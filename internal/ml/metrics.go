package ml

import "sort"

// Accuracy returns the fraction of matching predictions. Mismatched
// lengths — the signature of a corrupt evaluation — degrade to the common
// prefix instead of panicking (see the error-taxonomy notes in
// docs/OPERATIONS.md).
func Accuracy(pred, truth []int) float64 {
	pred, truth = commonPrefix(pred, truth)
	if len(pred) == 0 {
		return 0
	}
	ok := 0
	for i := range pred {
		if pred[i] == truth[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(pred))
}

// AUC returns the area under the ROC curve via the rank statistic
// (Mann–Whitney U), with tie correction. Returns 0.5 when a class is
// absent, the uninformative default.
func AUC(proba []float64, truth []int) float64 {
	if n := min(len(proba), len(truth)); n != len(proba) || n != len(truth) {
		proba, truth = proba[:n], truth[:n]
	}
	type pt struct {
		p float64
		y int
	}
	pts := make([]pt, len(proba))
	nPos, nNeg := 0, 0
	for i := range proba {
		pts[i] = pt{proba[i], truth[i]}
		if truth[i] == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].p < pts[j].p })
	// Average ranks with tie handling, then the Mann–Whitney statistic.
	rankSumPos := 0.0
	for i := 0; i < len(pts); {
		j := i
		for j < len(pts) && pts[j].p == pts[i].p {
			j++
		}
		avgRank := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			if pts[k].y == 1 {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// F1 returns the F1 score for the positive class; 0 when precision and
// recall are both zero. Mismatched lengths degrade to the common prefix.
func F1(pred, truth []int) float64 {
	pred, truth = commonPrefix(pred, truth)
	tp, fp, fn := 0, 0, 0
	for i := range pred {
		switch {
		case pred[i] == 1 && truth[i] == 1:
			tp++
		case pred[i] == 1 && truth[i] == 0:
			fp++
		case pred[i] == 0 && truth[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	return 2 * precision * recall / (precision + recall)
}

// commonPrefix truncates both slices to the shorter length, the graceful
// degradation for corrupt (length-mismatched) evaluations.
func commonPrefix(pred, truth []int) ([]int, []int) {
	n := min(len(pred), len(truth))
	return pred[:n], truth[:n]
}
