package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// CVResult summarises a k-fold cross-validation.
type CVResult struct {
	Model   string
	FoldAcc []float64
	FoldAUC []float64
	MeanAcc float64
	MeanAUC float64
	StdAcc  float64
}

// CrossValidate runs stratified k-fold cross-validation of the factory's
// model over a dense matrix. Each fold trains a fresh model; folds are
// stratified so every fold keeps the class balance.
func CrossValidate(f Factory, X [][]float64, y []int, k int, seed int64) (*CVResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: k-fold needs k >= 2, got %d", k)
	}
	if _, err := checkXY(X, y); err != nil {
		return nil, err
	}
	folds, err := stratifiedFolds(y, k, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	res := &CVResult{Model: f.Name}
	for fi := 0; fi < k; fi++ {
		var Xtr, Xte [][]float64
		var ytr, yte []int
		for fj, rows := range folds {
			for _, r := range rows {
				if fj == fi {
					Xte = append(Xte, X[r])
					yte = append(yte, y[r])
				} else {
					Xtr = append(Xtr, X[r])
					ytr = append(ytr, y[r])
				}
			}
		}
		m := f.New(seed + int64(fi))
		if err := m.Fit(Xtr, ytr); err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		proba := m.PredictProba(Xte)
		res.FoldAcc = append(res.FoldAcc, Accuracy(hardLabels(proba), yte))
		res.FoldAUC = append(res.FoldAUC, AUC(proba, yte))
	}
	for i := range res.FoldAcc {
		res.MeanAcc += res.FoldAcc[i]
		res.MeanAUC += res.FoldAUC[i]
	}
	res.MeanAcc /= float64(k)
	res.MeanAUC /= float64(k)
	for _, a := range res.FoldAcc {
		d := a - res.MeanAcc
		res.StdAcc += d * d
	}
	res.StdAcc = sqrt(res.StdAcc / float64(k))
	return res, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations suffice for the few digits we report.
	z := x
	for i := 0; i < 30; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// stratifiedFolds assigns each row to one of k folds preserving class
// proportions. Classes smaller than k spread their rows round-robin.
func stratifiedFolds(y []int, k int, rng *rand.Rand) ([][]int, error) {
	byClass := make(map[int][]int)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	folds := make([][]int, k)
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for i, r := range rows {
			folds[i%k] = append(folds[i%k], r)
		}
	}
	for fi, rows := range folds {
		if len(rows) == 0 {
			return nil, fmt.Errorf("ml: fold %d empty (too few rows for k=%d)", fi, k)
		}
	}
	return folds, nil
}
