package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestCrossValidate(t *testing.T) {
	X, y := synth(300, 5, 21)
	f, _ := FactoryByName("lightgbm")
	res, err := CrossValidate(f, X, y, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAcc) != 5 || len(res.FoldAUC) != 5 {
		t.Fatalf("5 folds expected, got %d", len(res.FoldAcc))
	}
	if res.MeanAcc < 0.8 {
		t.Fatalf("CV accuracy %.3f too low on separable task", res.MeanAcc)
	}
	if res.StdAcc < 0 || res.StdAcc > 0.3 {
		t.Fatalf("fold std %.3f implausible", res.StdAcc)
	}
	if res.Model != "lightgbm" {
		t.Fatal("model name missing")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	X, y := synth(50, 3, 23)
	f, _ := FactoryByName("knn")
	if _, err := CrossValidate(f, X, y, 1, 1); err == nil {
		t.Fatal("k<2 must fail")
	}
	if _, err := CrossValidate(f, nil, nil, 3, 1); err == nil {
		t.Fatal("empty data must fail")
	}
	// More folds than rows must fail with the empty-fold error.
	tiny := [][]float64{{1}, {2}}
	if _, err := CrossValidate(f, tiny, []int{0, 1}, 5, 1); err == nil {
		t.Fatal("k > n must fail")
	}
}

func TestCrossValidateStratification(t *testing.T) {
	// 10% positives: stratified folds must all contain a positive.
	n := 200
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		X[i] = []float64{float64(i)}
		if i%10 == 0 {
			y[i] = 1
		}
	}
	folds, err := stratifiedFolds(y, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for fi, rows := range folds {
		pos := 0
		for _, r := range rows {
			pos += y[r]
		}
		if pos == 0 {
			t.Fatalf("fold %d has no positives", fi)
		}
	}
	// All rows covered exactly once.
	seen := map[int]bool{}
	total := 0
	for _, rows := range folds {
		for _, r := range rows {
			if seen[r] {
				t.Fatal("row in two folds")
			}
			seen[r] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("folds cover %d rows, want %d", total, n)
	}
}

func TestGBDTEarlyStopping(t *testing.T) {
	X, y := synth(500, 5, 29)
	full := NewLightGBM(1)
	if err := full.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	early := NewLightGBM(1).WithEarlyStopping(5, 0.15)
	if err := early.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if early.TrainedRounds() >= full.TrainedRounds() {
		t.Fatalf("early stopping should trim rounds: %d vs %d", early.TrainedRounds(), full.TrainedRounds())
	}
	if early.TrainedRounds() < 3 {
		t.Fatalf("early stopping too aggressive: %d rounds", early.TrainedRounds())
	}
	// Accuracy must not collapse.
	Xte, yte := synth(200, 5, 31)
	if acc := Accuracy(early.Predict(Xte), yte); acc < 0.8 {
		t.Fatalf("early-stopped accuracy %.3f too low", acc)
	}
}

func TestGBDTEarlyStoppingDefaults(t *testing.T) {
	m := NewXGBoost(1).WithEarlyStopping(3, -1)
	if m.ValidationFrac != 0.1 {
		t.Fatalf("bad frac must default to 0.1, got %v", m.ValidationFrac)
	}
}

func TestGBDTFeatureImportances(t *testing.T) {
	X, y := synth(400, 6, 37)
	m := NewLightGBM(1)
	if m.FeatureImportances() != nil {
		t.Fatal("importances must be nil before Fit")
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportances()
	if len(imp) != 6 {
		t.Fatalf("importances length %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatal("importances must be non-negative")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances must sum to 1, got %v", sum)
	}
	// Informative features (0,1) must dominate noise.
	if imp[0]+imp[1] < 0.5 {
		t.Fatalf("informative features carry too little importance: %v", imp)
	}
}

func TestForestFeatureImportances(t *testing.T) {
	X, y := synth(400, 6, 41)
	for _, name := range []string{"randomforest", "extratrees"} {
		f, _ := FactoryByName(name)
		m := f.New(1).(*Forest)
		if m.FeatureImportances() != nil {
			t.Fatalf("%s: importances before Fit", name)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		imp := m.FeatureImportances()
		sum := 0.0
		for _, v := range imp {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: importances sum %v", name, sum)
		}
		if imp[0]+imp[1] < 0.4 {
			t.Fatalf("%s: informative importance too low: %v", name, imp)
		}
	}
}
