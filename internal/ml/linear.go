package ml

import (
	"math"
	"math/rand"
)

// LogRegL1 is logistic regression with L1 regularisation, trained with
// proximal gradient descent (ISTA) over standardised features. It is the
// reproduction's stand-in for the paper's "Linear Regression with L1
// regularisation (LR)" classifier; the L1 penalty drives irrelevant
// augmented features to exactly zero weight, which is why the paper uses
// it as a linear-model stress test for noisy augmentation.
type LogRegL1 struct {
	// Alpha is the L1 penalty strength.
	Alpha float64
	// Epochs bounds the number of full gradient passes.
	Epochs int
	// LR is the gradient step size.
	LR float64

	seed    int64
	weights []float64
	bias    float64
	means   []float64
	stds    []float64
}

// NewLogRegL1 returns the default configuration (alpha 0.01, 200 epochs).
func NewLogRegL1(seed int64) *LogRegL1 {
	return &LogRegL1{Alpha: 0.01, Epochs: 200, LR: 0.5, seed: seed}
}

// Name implements Classifier.
func (m *LogRegL1) Name() string { return "lr_l1" }

// Fit implements Classifier.
func (m *LogRegL1) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	imputed, means := meanImpute(X)
	m.means = means
	m.stds = columnStds(imputed, means)
	Z := standardize(imputed, means, m.stds)
	n := len(Z)

	rng := rand.New(rand.NewSource(m.seed))
	m.weights = make([]float64, d)
	for j := range m.weights {
		m.weights[j] = rng.NormFloat64() * 1e-3
	}
	m.bias = 0

	grad := make([]float64, d)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range grad {
			grad[j] = 0
		}
		gb := 0.0
		for i, row := range Z {
			p := sigmoid(m.score(row))
			e := p - float64(y[i])
			for j, v := range row {
				grad[j] += e * v
			}
			gb += e
		}
		step := m.LR / float64(n)
		for j := range m.weights {
			w := m.weights[j] - step*grad[j]
			// Proximal (soft-threshold) operator for the L1 penalty.
			m.weights[j] = softThreshold(w, m.LR*m.Alpha)
		}
		m.bias -= step * gb
	}
	return nil
}

func (m *LogRegL1) score(row []float64) float64 {
	s := m.bias
	for j, v := range row {
		s += m.weights[j] * v
	}
	return s
}

func softThreshold(w, t float64) float64 {
	switch {
	case w > t:
		return w - t
	case w < -t:
		return w + t
	default:
		return 0
	}
}

// PredictProba implements Classifier.
func (m *LogRegL1) PredictProba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if m.weights == nil {
		return out
	}
	Z := standardize(applyImpute(X, m.means), m.means, m.stds)
	for i, row := range Z {
		out[i] = sigmoid(m.score(row))
	}
	return out
}

// Predict implements Classifier.
func (m *LogRegL1) Predict(X [][]float64) []int { return hardLabels(m.PredictProba(X)) }

// NonZeroWeights reports how many features carry non-zero weight after
// training; tests use it to confirm the L1 penalty sparsifies.
func (m *LogRegL1) NonZeroWeights() int {
	n := 0
	for _, w := range m.weights {
		if math.Abs(w) > 0 {
			n++
		}
	}
	return n
}
