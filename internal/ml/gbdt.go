package ml

import (
	"container/heap"
	"math"
	"math/rand"
)

// GBDT is a gradient-boosted decision tree classifier with logistic loss.
// Two growth strategies mirror the paper's boosted models: leaf-wise
// best-first growth (the LightGBM signature) and depth-wise growth with L2
// leaf regularisation (the XGBoost signature).
type GBDT struct {
	name         string
	nRounds      int
	learningRate float64
	maxLeaves    int // leaf-wise budget (leafWise only)
	maxDepth     int
	minChild     int     // minimum rows per leaf
	lambda       float64 // L2 regularisation on leaf values
	leafWise     bool
	seed         int64

	// EarlyStopRounds > 0 enables early stopping: training stops when
	// the held-out logloss has not improved for that many rounds.
	EarlyStopRounds int
	// ValidationFrac is the training fraction held out for early
	// stopping (default 0.1 when early stopping is enabled).
	ValidationFrac float64

	bn         *binner
	trees      []*binTree
	baseline   float64 // initial log-odds
	importance []float64
	rounds     int // rounds actually trained (== len(trees))
}

// WithEarlyStopping enables early stopping: training stops once the
// held-out logloss has not improved for `rounds` boosting rounds.
func (g *GBDT) WithEarlyStopping(rounds int, validationFrac float64) *GBDT {
	g.EarlyStopRounds = rounds
	if validationFrac <= 0 || validationFrac >= 1 {
		validationFrac = 0.1
	}
	g.ValidationFrac = validationFrac
	return g
}

// FeatureImportances returns per-feature split-gain totals accumulated
// during training, normalised to sum to 1 (nil before Fit, zeros when no
// split was ever made).
func (g *GBDT) FeatureImportances() []float64 {
	if g.importance == nil {
		return nil
	}
	out := make([]float64, len(g.importance))
	total := 0.0
	for _, v := range g.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range g.importance {
		out[i] = v / total
	}
	return out
}

// TrainedRounds reports how many boosting rounds actually ran (fewer than
// the budget when early stopping triggers).
func (g *GBDT) TrainedRounds() int { return g.rounds }

// NewLightGBM returns the leaf-wise boosted model (100 rounds, 31 leaves,
// learning rate 0.1) approximating LightGBM defaults.
func NewLightGBM(seed int64) *GBDT {
	return &GBDT{
		name: "lightgbm", nRounds: 100, learningRate: 0.1,
		maxLeaves: 31, maxDepth: 16, minChild: 5, lambda: 1, leafWise: true, seed: seed,
	}
}

// NewXGBoost returns the depth-wise boosted model (100 rounds, depth 6,
// learning rate 0.1, L2 = 1) approximating XGBoost defaults.
func NewXGBoost(seed int64) *GBDT {
	return &GBDT{
		name: "xgboost", nRounds: 100, learningRate: 0.1,
		maxDepth: 6, minChild: 5, lambda: 1, seed: seed,
	}
}

// Name implements Classifier.
func (g *GBDT) Name() string { return g.name }

// Fit implements Classifier.
func (g *GBDT) Fit(X [][]float64, y []int) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	g.bn = fitBinner(X, defaultMaxBins)
	binned := g.bn.transform(X)
	n := len(X)
	if len(X) > 0 {
		g.importance = make([]float64, len(X[0]))
	}

	// Early-stopping holdout: an evenly strided, class-alternating subset.
	var valRows []int
	inVal := make([]bool, n)
	if g.EarlyStopRounds > 0 {
		frac := g.ValidationFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.1
		}
		stride := int(1 / frac)
		if stride < 2 {
			stride = 2
		}
		for i := stride - 1; i < n; i += stride {
			valRows = append(valRows, i)
			inVal[i] = true
		}
	}

	// Initial prediction: log-odds of the positive rate.
	pos := 0
	for _, v := range y {
		pos += v
	}
	p0 := (float64(pos) + 0.5) / (float64(n) + 1)
	g.baseline = logit(p0)

	scores := make([]float64, n)
	for i := range scores {
		scores[i] = g.baseline
	}
	grad := make([]float64, n)
	hess := make([]float64, n)
	rows := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !inVal[i] {
			rows = append(rows, i)
		}
	}
	rng := rand.New(rand.NewSource(g.seed))
	g.trees = g.trees[:0]
	bestValLoss := math.Inf(1)
	sinceBest := 0
	bestRounds := 0
	for round := 0; round < g.nRounds; round++ {
		for i := 0; i < n; i++ {
			p := sigmoid(scores[i])
			grad[i] = p - float64(y[i])
			hess[i] = p * (1 - p)
		}
		t := g.buildRegTree(binned, grad, hess, rows, rng)
		g.trees = append(g.trees, t)
		for i, row := range binned {
			scores[i] += g.learningRate * t.predictRow(row)
		}
		if g.EarlyStopRounds > 0 && len(valRows) > 0 {
			loss := 0.0
			for _, i := range valRows {
				p := sigmoid(scores[i])
				if y[i] == 1 {
					loss -= math.Log(math.Max(p, 1e-12))
				} else {
					loss -= math.Log(math.Max(1-p, 1e-12))
				}
			}
			if loss < bestValLoss-1e-9 {
				bestValLoss = loss
				sinceBest = 0
				bestRounds = len(g.trees)
			} else {
				sinceBest++
				if sinceBest >= g.EarlyStopRounds {
					g.trees = g.trees[:bestRounds]
					break
				}
			}
		}
	}
	g.rounds = len(g.trees)
	return nil
}

// PredictProba implements Classifier.
func (g *GBDT) PredictProba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if g.bn == nil {
		return out
	}
	binned := g.bn.transform(X)
	for i, row := range binned {
		s := g.baseline
		for _, t := range g.trees {
			s += g.learningRate * t.predictRow(row)
		}
		out[i] = sigmoid(s)
	}
	return out
}

// Predict implements Classifier.
func (g *GBDT) Predict(X [][]float64) []int { return hardLabels(g.PredictProba(X)) }

func logit(p float64) float64 {
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		p = 1 - 1e-9
	}
	return math.Log(p / (1 - p))
}

// regSplit describes the best split found for a leaf.
type regSplit struct {
	gain     float64
	feature  int
	splitBin uint8
	lrows    []int
	rrows    []int
}

// buildRegTree grows one regression tree on gradient/hessian targets.
func (g *GBDT) buildRegTree(binned [][]uint8, grad, hess []float64, rows []int, rng *rand.Rand) *binTree {
	t := &binTree{}
	if g.leafWise {
		g.growLeafWise(t, binned, grad, hess, rows)
	} else {
		g.growDepthWise(t, binned, grad, hess, rows, 0)
	}
	return t
}

// growDepthWise is classic recursive expansion to maxDepth.
func (g *GBDT) growDepthWise(t *binTree, binned [][]uint8, grad, hess []float64, rows []int, depth int) int {
	id := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{left: -1, right: -1, value: g.leafValue(grad, hess, rows)})
	if depth >= g.maxDepth || len(rows) < 2*g.minChild {
		return id
	}
	sp, ok := g.bestRegSplit(binned, grad, hess, rows)
	if !ok {
		return id
	}
	l := g.growDepthWise(t, binned, grad, hess, sp.lrows, depth+1)
	r := g.growDepthWise(t, binned, grad, hess, sp.rrows, depth+1)
	t.nodes[id].feature = sp.feature
	t.nodes[id].splitBin = sp.splitBin
	t.nodes[id].left = l
	t.nodes[id].right = r
	return id
}

// leafCandidate is a grown-but-splittable leaf in the best-first queue.
type leafCandidate struct {
	nodeID int
	depth  int
	split  regSplit
}

// leafHeap is a max-heap on split gain.
type leafHeap []leafCandidate

func (h leafHeap) Len() int           { return len(h) }
func (h leafHeap) Less(i, j int) bool { return h[i].split.gain > h[j].split.gain }
func (h leafHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *leafHeap) Push(x any)        { *h = append(*h, x.(leafCandidate)) }
func (h *leafHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// growLeafWise expands the highest-gain leaf first until the maxLeaves
// budget is exhausted — LightGBM's signature growth order.
func (g *GBDT) growLeafWise(t *binTree, binned [][]uint8, grad, hess []float64, rows []int) {
	t.nodes = append(t.nodes, treeNode{left: -1, right: -1, value: g.leafValue(grad, hess, rows)})
	h := &leafHeap{}
	if sp, ok := g.bestRegSplit(binned, grad, hess, rows); ok {
		heap.Push(h, leafCandidate{nodeID: 0, depth: 0, split: sp})
	}
	leaves := 1
	for h.Len() > 0 && leaves < g.maxLeaves {
		c := heap.Pop(h).(leafCandidate)
		sp := c.split
		g.importance[sp.feature] += sp.gain
		l := len(t.nodes)
		t.nodes = append(t.nodes, treeNode{left: -1, right: -1, value: g.leafValue(grad, hess, sp.lrows)})
		r := len(t.nodes)
		t.nodes = append(t.nodes, treeNode{left: -1, right: -1, value: g.leafValue(grad, hess, sp.rrows)})
		t.nodes[c.nodeID].feature = sp.feature
		t.nodes[c.nodeID].splitBin = sp.splitBin
		t.nodes[c.nodeID].left = l
		t.nodes[c.nodeID].right = r
		leaves++ // one leaf became two
		if c.depth+1 < g.maxDepth {
			if lsp, ok := g.bestRegSplit(binned, grad, hess, sp.lrows); ok {
				heap.Push(h, leafCandidate{nodeID: l, depth: c.depth + 1, split: lsp})
			}
			if rsp, ok := g.bestRegSplit(binned, grad, hess, sp.rrows); ok {
				heap.Push(h, leafCandidate{nodeID: r, depth: c.depth + 1, split: rsp})
			}
		}
	}
}

// leafValue is the Newton step -G/(H+λ).
func (g *GBDT) leafValue(grad, hess []float64, rows []int) float64 {
	var gs, hs float64
	for _, r := range rows {
		gs += grad[r]
		hs += hess[r]
	}
	return -gs / (hs + g.lambda)
}

// bestRegSplit scans all (feature, bin) candidates for the split with the
// highest regularised gain.
func (g *GBDT) bestRegSplit(binned [][]uint8, grad, hess []float64, rows []int) (regSplit, bool) {
	if len(rows) < 2*g.minChild {
		return regSplit{}, false
	}
	d := len(g.bn.cuts)
	var tg, th float64
	for _, r := range rows {
		tg += grad[r]
		th += hess[r]
	}
	parent := tg * tg / (th + g.lambda)
	var best regSplit
	found := false
	var gsum, hsum [64]float64
	var cnt [64]int
	for j := 0; j < d; j++ {
		nb := g.bn.numBins(j)
		for b := 0; b < nb; b++ {
			gsum[b], hsum[b], cnt[b] = 0, 0, 0
		}
		for _, r := range rows {
			b := binned[r][j]
			gsum[b] += grad[r]
			hsum[b] += hess[r]
			cnt[b]++
		}
		var lg, lh float64
		ln := 0
		for b := 0; b < nb-1; b++ {
			lg += gsum[b]
			lh += hsum[b]
			ln += cnt[b]
			rn := len(rows) - ln
			if ln < g.minChild || rn < g.minChild {
				continue
			}
			rg, rh := tg-lg, th-lh
			gain := lg*lg/(lh+g.lambda) + rg*rg/(rh+g.lambda) - parent
			if gain > 1e-12 && (!found || gain > best.gain) {
				best = regSplit{gain: gain, feature: j, splitBin: uint8(b)}
				found = true
			}
		}
	}
	if !found {
		return regSplit{}, false
	}
	for _, r := range rows {
		if binned[r][best.feature] <= best.splitBin {
			best.lrows = append(best.lrows, r)
		} else {
			best.rrows = append(best.rrows, r)
		}
	}
	return best, true
}
