package ml

import (
	"math"
	"sort"
)

// KNN is a brute-force K-nearest-neighbours classifier over standardised
// features. Distances are Euclidean; the predicted probability is the
// positive fraction among the k nearest training rows. To keep prediction
// cost bounded on large tables the reference set is capped at MaxTrain
// rows (an evenly-strided subsample), the standard condensation shortcut
// for brute-force KNN.
type KNN struct {
	k int
	// MaxTrain caps the stored reference rows; <= 0 means unlimited.
	MaxTrain int

	train [][]float64
	y     []int
	means []float64
	stds  []float64
}

// NewKNN builds a KNN classifier with the given neighbourhood size and the
// default 2000-row reference cap.
func NewKNN(k int) *KNN {
	if k < 1 {
		k = 1
	}
	return &KNN{k: k, MaxTrain: 2000}
}

// Name implements Classifier.
func (m *KNN) Name() string { return "knn" }

// Fit implements Classifier.
func (m *KNN) Fit(X [][]float64, y []int) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	imputed, means := meanImpute(X)
	m.means = means
	m.stds = columnStds(imputed, means)
	train := standardize(imputed, means, m.stds)
	labels := append([]int(nil), y...)
	if m.MaxTrain > 0 && len(train) > m.MaxTrain {
		stride := float64(len(train)) / float64(m.MaxTrain)
		sub := make([][]float64, 0, m.MaxTrain)
		subY := make([]int, 0, m.MaxTrain)
		for i := 0; i < m.MaxTrain; i++ {
			j := int(float64(i) * stride)
			sub = append(sub, train[j])
			subY = append(subY, labels[j])
		}
		train, labels = sub, subY
	}
	m.train = train
	m.y = labels
	return nil
}

// PredictProba implements Classifier.
func (m *KNN) PredictProba(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if m.train == nil {
		return out
	}
	q := standardize(applyImpute(X, m.means), m.means, m.stds)
	k := m.k
	if k > len(m.train) {
		k = len(m.train)
	}
	type dn struct {
		d float64
		y int
	}
	for i, row := range q {
		ds := make([]dn, len(m.train))
		for t, tr := range m.train {
			s := 0.0
			for j := range tr {
				diff := tr[j] - row[j]
				s += diff * diff
			}
			ds[t] = dn{d: s, y: m.y[t]}
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
		pos := 0
		for _, n := range ds[:k] {
			pos += n.y
		}
		out[i] = float64(pos) / float64(k)
	}
	return out
}

// Predict implements Classifier.
func (m *KNN) Predict(X [][]float64) []int { return hardLabels(m.PredictProba(X)) }

// columnStds returns per-feature standard deviations given the means;
// zero-variance features get std 1 so standardisation is a no-op there.
func columnStds(X [][]float64, means []float64) []float64 {
	d := len(means)
	stds := make([]float64, d)
	for _, r := range X {
		for j, v := range r {
			diff := v - means[j]
			stds[j] += diff * diff
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / float64(len(X)))
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	return stds
}

func standardize(X [][]float64, means, stds []float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		row := make([]float64, len(r))
		for j, v := range r {
			row[j] = (v - means[j]) / stds[j]
		}
		out[i] = row
	}
	return out
}
