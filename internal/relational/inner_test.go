package relational

import (
	"math"
	"testing"

	"autofeat/internal/frame"
)

func TestInnerJoinDropsUnmatched(t *testing.T) {
	res, err := InnerJoin(applicants(t), credit(t), "applicants.id", "person", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 2 {
		t.Fatalf("inner join keeps only matches: %d rows", res.Frame.NumRows())
	}
	if res.MatchedRows != 2 {
		t.Fatalf("MatchedRows = %d", res.MatchedRows)
	}
	sc := res.Frame.Column("credit.score")
	if sc.NullCount() != 0 {
		t.Fatal("inner join result has no nulls in added columns")
	}
	if res.Quality() != 1 {
		t.Fatal("inner join quality is trivially 1")
	}
}

func TestInnerJoinSkewsLabels(t *testing.T) {
	// This is the Section IV-B argument made concrete: the base is
	// balanced, but only positive rows have a join partner, so the inner
	// join destroys the class balance where the left join preserves it.
	base := frame.New("b")
	if err := base.AddColumn(frame.NewIntColumn("b.k", []int64{1, 2, 3, 4}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := base.AddColumn(frame.NewIntColumn("b.y", []int64{0, 1, 0, 1}, nil)); err != nil {
		t.Fatal(err)
	}
	right := frame.New("r")
	if err := right.AddColumn(frame.NewIntColumn("k", []int64{2, 4}, nil)); err != nil { // positives only
		t.Fatal(err)
	}
	if err := right.AddColumn(frame.NewFloatColumn("v", []float64{1, 2}, nil)); err != nil {
		t.Fatal(err)
	}
	inner, err := InnerJoin(base, right, "b.k", "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	innerDist, _ := inner.Frame.ClassDistribution("b.y")
	if innerDist[0] != 0 || innerDist[1] != 2 {
		t.Fatalf("inner join should have kept only positives: %v", innerDist)
	}
	left, err := LeftJoin(base, right, "b.k", "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	leftDist, _ := left.Frame.ClassDistribution("b.y")
	if leftDist[0] != 2 || leftDist[1] != 2 {
		t.Fatalf("left join must preserve balance: %v", leftDist)
	}
}

func TestInnerJoinErrorsAndNullKeys(t *testing.T) {
	if _, err := InnerJoin(applicants(t), credit(t), "ghost", "person", Options{}); err == nil {
		t.Fatal("missing left key must fail")
	}
	if _, err := InnerJoin(applicants(t), credit(t), "applicants.id", "ghost", Options{}); err == nil {
		t.Fatal("missing right key must fail")
	}
	base := newFrame(t, "b", frame.NewIntColumn("b.k", []int64{1, 2}, []bool{true, false}))
	right := newFrame(t, "r",
		frame.NewIntColumn("k", []int64{1, 2}, nil),
		frame.NewFloatColumn("v", []float64{math.Pi, 2}, nil),
	)
	res, err := InnerJoin(base, right, "b.k", "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.NumRows() != 1 {
		t.Fatal("null keys never match in inner joins either")
	}
}
