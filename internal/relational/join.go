// Package relational implements the join engine of the AutoFeat
// reproduction: left joins with join-cardinality normalisation (Section
// IV-B of the paper), multi-hop join-path materialisation and the
// data-quality measurements that drive path pruning (Section IV-C).
//
// AutoFeat only ever performs LEFT joins so that the base table's row count
// and label distribution are preserved exactly. One-to-many and
// many-to-many joins are first reduced to one-to-one by grouping the right
// side on the join column and keeping a single representative row per key
// (randomly chosen when an *rand.Rand is supplied, deterministically the
// first row otherwise).
package relational

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"

	"autofeat/internal/errs"
	"autofeat/internal/frame"
	"autofeat/internal/telemetry"
)

// Options controls join behaviour.
type Options struct {
	// Ctx, when non-nil, is checked cooperatively during the join (every
	// ctxCheckRows left rows): a cancelled context aborts the join with an
	// error wrapping errs.ErrCancelled, so a deadline cuts a large
	// materialisation short instead of running it to completion.
	Ctx context.Context
	// Normalize reduces the right side to one row per join key before the
	// join, preventing row duplication (the paper's cardinality handling).
	// When false, a key with multiple right rows keeps the first.
	Normalize bool
	// Rng picks the representative row per key during normalisation. Nil
	// means the first occurrence is kept, which is fully deterministic.
	Rng *rand.Rand
	// Seed identifies the stream Rng was created from, for Cache keying.
	// Callers that pass both Cache and a non-nil Rng MUST derive Rng from
	// Seed (rand.New(rand.NewSource(Seed))) so that a cached index and a
	// freshly built one are interchangeable.
	Seed int64
	// Cache, when non-nil, memoises the right-side key index per
	// (column, normalize, seed) so repeated joins against the same right
	// table skip the index build. Safe for concurrent use.
	Cache *KeyIndexCache
	// Telemetry, when non-nil, records a span and duration histogram per
	// join. Nil disables collection.
	Telemetry *telemetry.Collector
	// Log, when non-nil, receives a Debug record per join (keys, row
	// counts, match ratio). Nil — the default — disables logging.
	Log *slog.Logger
}

// Result is the outcome of a left join.
type Result struct {
	// Frame is the joined table: all left columns followed by the right
	// columns renamed to "rightTable.column".
	Frame *frame.Frame
	// AddedColumns are the names of the columns contributed by the right
	// side, in order — the candidate features of this join.
	AddedColumns []string
	// MatchedRows is the number of left rows that found a join partner.
	MatchedRows int
}

// MatchRatio returns the fraction of left rows that matched.
func (r *Result) MatchRatio() float64 {
	n := r.Frame.NumRows()
	if n == 0 {
		return 0
	}
	return float64(r.MatchedRows) / float64(n)
}

// Quality returns the completeness (non-null ratio) over the columns added
// by this join — the paper's data-quality measure. A join whose Quality
// falls below the threshold τ is pruned.
func (r *Result) Quality() float64 {
	cells, nulls := 0, 0
	for _, name := range r.AddedColumns {
		c := r.Frame.Column(name)
		cells += c.Len()
		nulls += c.NullCount()
	}
	if cells == 0 {
		return 1
	}
	return 1 - float64(nulls)/float64(cells)
}

// LeftJoin joins left with right on left[leftKey] = right[rightKey],
// preserving every left row exactly once. Unmatched left rows receive nulls
// in the right-hand columns. Right columns are prefixed with the right
// table's name; name collisions get a numeric suffix.
func LeftJoin(left, right *frame.Frame, leftKey, rightKey string, opt Options) (*Result, error) {
	lc := left.Column(leftKey)
	if lc == nil {
		return nil, fmt.Errorf("relational: left table %q has no column %q", left.Name(), leftKey)
	}
	rc := right.Column(rightKey)
	if rc == nil {
		return nil, fmt.Errorf("relational: right table %q has no column %q", right.Name(), rightKey)
	}
	_, sp := opt.Telemetry.Trace().StartSpan(opt.Ctx, telemetry.SpanLeftJoin)
	defer func() {
		opt.Telemetry.Meter().Observe(telemetry.HistJoinSeconds, sp.End().Seconds())
	}()
	opt.Telemetry.Meter().Inc(telemetry.CtrJoins)

	if err := cancelled(opt.Ctx); err != nil {
		return nil, err
	}

	// Build key -> right-row index, normalising cardinality. The cache
	// (when present) reuses indexes across joins against the same column.
	rowFor := opt.Cache.index(rc, opt)

	// Map each left row to a right row (-1 = no match -> nulls).
	idx := make([]int, left.NumRows())
	matched := 0
	for i := range idx {
		if i%ctxCheckRows == 0 && i > 0 {
			if err := cancelled(opt.Ctx); err != nil {
				return nil, err
			}
		}
		idx[i] = -1
		if k, ok := lc.Key(i); ok {
			if r, ok := rowFor[k]; ok {
				idx[i] = r
				matched++
			}
		}
	}

	rightRows := right.Prefixed(right.Name()).Take(idx)
	out, err := left.ConcatCols(rightRows)
	if err != nil {
		return nil, err
	}
	sp.SetStr("on", leftKey+" = "+right.Name()+"."+rightKey)
	sp.SetInt("left_rows", left.NumRows())
	sp.SetInt("matched_rows", matched)
	if opt.Log != nil {
		opt.Log.Debug("left join",
			"on", leftKey+" = "+right.Name()+"."+rightKey,
			"left_rows", left.NumRows(), "matched_rows", matched)
	}
	added := out.ColumnNames()[left.NumCols():]
	return &Result{Frame: out.WithName(left.Name()), AddedColumns: added, MatchedRows: matched}, nil
}

// ctxCheckRows is the row stride between cooperative cancellation checks
// inside LeftJoin's row-mapping loop — frequent enough to stop a large
// join within microseconds of a deadline, rare enough to cost nothing.
const ctxCheckRows = 4096

// cancelled returns an errs.Cancelled-classified error when ctx is done,
// nil otherwise (including for a nil ctx).
func cancelled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return errs.Cancelled(err)
	}
	return nil
}

// keyIndexKey identifies one memoised key index. The column pointer is
// the identity: graph tables are stable for the lifetime of a run, and a
// column is immutable once inside a Frame. random distinguishes the
// deterministic first-occurrence index (reusable regardless of seed) from
// reservoir-sampled indexes, which are pure functions of the seed.
type keyIndexKey struct {
	col       *frame.Column
	normalize bool
	random    bool
	seed      int64
}

// KeyIndexCache memoises the key→row indexes LeftJoin builds for its
// right side, so repeated joins against the same table column reuse the
// map instead of rescanning the column. It is safe for concurrent use —
// the parallel discovery loop shares one cache across its workers.
type KeyIndexCache struct {
	mu           sync.Mutex
	m            map[keyIndexKey]map[string]int
	hits, misses int64
}

// NewKeyIndexCache returns an empty cache.
func NewKeyIndexCache() *KeyIndexCache {
	return &KeyIndexCache{m: make(map[keyIndexKey]map[string]int)}
}

// Stats reports cache hits and misses so far.
func (c *KeyIndexCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// InvalidateColumns evicts every memoised key index built over one of
// the given columns. The lake mutation path calls it with exactly the
// columns of a replaced or dropped table — entries for every other
// column survive, which is what keeps incremental maintenance cheap
// (and is asserted by the cache-identity test).
func (c *KeyIndexCache) InvalidateColumns(cols []*frame.Column) {
	if c == nil || len(cols) == 0 {
		return
	}
	drop := make(map[*frame.Column]bool, len(cols))
	for _, col := range cols {
		drop[col] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.m {
		if drop[k.col] {
			delete(c.m, k)
		}
	}
}

// Peek returns the memoised deterministic (non-random, seed-collapsed)
// key index for the column, or nil, without counting a hit or building
// anything. It exists so tests can assert pointer identity of surviving
// entries across lake mutations.
func (c *KeyIndexCache) Peek(col *frame.Column, normalize bool) map[string]int {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[keyIndexKey{col: col, normalize: normalize}]
}

// Len reports how many key indexes the cache currently holds — the
// per-lake cache-size gauge the service exports.
func (c *KeyIndexCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// index returns the (possibly cached) key index for rc under opt. A nil
// cache builds the index directly. The returned map is shared and must be
// treated as read-only. On a miss the index is built outside the lock:
// two goroutines may race to build the same index, but both builds are
// identical (the index is a pure function of the key), so last-write-wins
// is harmless and concurrent misses never serialise behind each other.
func (c *KeyIndexCache) index(rc *frame.Column, opt Options) map[string]int {
	if c == nil {
		return buildKeyIndex(rc, opt)
	}
	key := keyIndexKey{col: rc, normalize: opt.Normalize, random: opt.Normalize && opt.Rng != nil, seed: opt.Seed}
	if !key.random {
		// The deterministic index ignores the seed entirely; collapse the
		// key so every caller shares one entry.
		key.seed = 0
	}
	c.mu.Lock()
	if idx, ok := c.m[key]; ok {
		c.hits++
		c.mu.Unlock()
		opt.Telemetry.Meter().Inc(telemetry.CtrKeyIndexHits)
		return idx
	}
	c.mu.Unlock()
	idx := buildKeyIndex(rc, opt)
	c.mu.Lock()
	c.m[key] = idx
	c.misses++
	c.mu.Unlock()
	opt.Telemetry.Meter().Inc(telemetry.CtrKeyIndexMisses)
	return idx
}

// buildKeyIndex returns the representative right-row index per join key.
func buildKeyIndex(rc *frame.Column, opt Options) map[string]int {
	if !opt.Normalize || opt.Rng == nil {
		// First occurrence wins.
		rowFor := make(map[string]int, rc.Len())
		for i, n := 0, rc.Len(); i < n; i++ {
			if k, ok := rc.Key(i); ok {
				if _, seen := rowFor[k]; !seen {
					rowFor[k] = i
				}
			}
		}
		return rowFor
	}
	// Reservoir-sample one row per key so group-by + random pick is a
	// single pass (the paper's "group by the join column and randomly
	// select a row").
	rowFor := make(map[string]int, rc.Len())
	count := make(map[string]int, rc.Len())
	for i, n := 0, rc.Len(); i < n; i++ {
		k, ok := rc.Key(i)
		if !ok {
			continue
		}
		count[k]++
		if opt.Rng.Intn(count[k]) == 0 {
			rowFor[k] = i
		}
	}
	return rowFor
}

// KeyOverlap returns |keys(a) ∩ keys(b)| / |keys(a)|: the fraction of the
// left column's distinct values that appear in the right column. Used both
// by tests and by the discovery matcher as a joinability signal.
func KeyOverlap(a, b *frame.Column) float64 {
	as := a.ValueSet()
	if len(as) == 0 {
		return 0
	}
	bs := b.ValueSet()
	inter := 0
	for k := range as {
		if _, ok := bs[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(as))
}
