// Package relational implements the join engine of the AutoFeat
// reproduction: left joins with join-cardinality normalisation (Section
// IV-B of the paper), multi-hop join-path materialisation and the
// data-quality measurements that drive path pruning (Section IV-C).
//
// AutoFeat only ever performs LEFT joins so that the base table's row count
// and label distribution are preserved exactly. One-to-many and
// many-to-many joins are first reduced to one-to-one by grouping the right
// side on the join column and keeping a single representative row per key
// (randomly chosen when an *rand.Rand is supplied, deterministically the
// first row otherwise).
package relational

import (
	"fmt"
	"math/rand"

	"autofeat/internal/frame"
	"autofeat/internal/telemetry"
)

// Options controls join behaviour.
type Options struct {
	// Normalize reduces the right side to one row per join key before the
	// join, preventing row duplication (the paper's cardinality handling).
	// When false, a key with multiple right rows keeps the first.
	Normalize bool
	// Rng picks the representative row per key during normalisation. Nil
	// means the first occurrence is kept, which is fully deterministic.
	Rng *rand.Rand
	// Telemetry, when non-nil, records a span and duration histogram per
	// join. Nil disables collection.
	Telemetry *telemetry.Collector
}

// Result is the outcome of a left join.
type Result struct {
	// Frame is the joined table: all left columns followed by the right
	// columns renamed to "rightTable.column".
	Frame *frame.Frame
	// AddedColumns are the names of the columns contributed by the right
	// side, in order — the candidate features of this join.
	AddedColumns []string
	// MatchedRows is the number of left rows that found a join partner.
	MatchedRows int
}

// MatchRatio returns the fraction of left rows that matched.
func (r *Result) MatchRatio() float64 {
	n := r.Frame.NumRows()
	if n == 0 {
		return 0
	}
	return float64(r.MatchedRows) / float64(n)
}

// Quality returns the completeness (non-null ratio) over the columns added
// by this join — the paper's data-quality measure. A join whose Quality
// falls below the threshold τ is pruned.
func (r *Result) Quality() float64 {
	cells, nulls := 0, 0
	for _, name := range r.AddedColumns {
		c := r.Frame.Column(name)
		cells += c.Len()
		nulls += c.NullCount()
	}
	if cells == 0 {
		return 1
	}
	return 1 - float64(nulls)/float64(cells)
}

// LeftJoin joins left with right on left[leftKey] = right[rightKey],
// preserving every left row exactly once. Unmatched left rows receive nulls
// in the right-hand columns. Right columns are prefixed with the right
// table's name; name collisions get a numeric suffix.
func LeftJoin(left, right *frame.Frame, leftKey, rightKey string, opt Options) (*Result, error) {
	lc := left.Column(leftKey)
	if lc == nil {
		return nil, fmt.Errorf("relational: left table %q has no column %q", left.Name(), leftKey)
	}
	rc := right.Column(rightKey)
	if rc == nil {
		return nil, fmt.Errorf("relational: right table %q has no column %q", right.Name(), rightKey)
	}
	sp := opt.Telemetry.Trace().Start(telemetry.SpanLeftJoin)
	defer func() {
		opt.Telemetry.Meter().Observe(telemetry.HistJoinSeconds, sp.End().Seconds())
	}()
	opt.Telemetry.Meter().Inc(telemetry.CtrJoins)

	// Build key -> right-row index, normalising cardinality.
	rowFor := buildKeyIndex(rc, opt)

	// Map each left row to a right row (-1 = no match -> nulls).
	idx := make([]int, left.NumRows())
	matched := 0
	for i := range idx {
		idx[i] = -1
		if k, ok := lc.Key(i); ok {
			if r, ok := rowFor[k]; ok {
				idx[i] = r
				matched++
			}
		}
	}

	rightRows := right.Prefixed(right.Name()).Take(idx)
	out, err := left.ConcatCols(rightRows)
	if err != nil {
		return nil, err
	}
	sp.SetStr("on", leftKey+" = "+right.Name()+"."+rightKey)
	sp.SetInt("left_rows", left.NumRows())
	sp.SetInt("matched_rows", matched)
	added := out.ColumnNames()[left.NumCols():]
	return &Result{Frame: out.WithName(left.Name()), AddedColumns: added, MatchedRows: matched}, nil
}

// buildKeyIndex returns the representative right-row index per join key.
func buildKeyIndex(rc *frame.Column, opt Options) map[string]int {
	if !opt.Normalize || opt.Rng == nil {
		// First occurrence wins.
		rowFor := make(map[string]int, rc.Len())
		for i, n := 0, rc.Len(); i < n; i++ {
			if k, ok := rc.Key(i); ok {
				if _, seen := rowFor[k]; !seen {
					rowFor[k] = i
				}
			}
		}
		return rowFor
	}
	// Reservoir-sample one row per key so group-by + random pick is a
	// single pass (the paper's "group by the join column and randomly
	// select a row").
	rowFor := make(map[string]int, rc.Len())
	count := make(map[string]int, rc.Len())
	for i, n := 0, rc.Len(); i < n; i++ {
		k, ok := rc.Key(i)
		if !ok {
			continue
		}
		count[k]++
		if opt.Rng.Intn(count[k]) == 0 {
			rowFor[k] = i
		}
	}
	return rowFor
}

// KeyOverlap returns |keys(a) ∩ keys(b)| / |keys(a)|: the fraction of the
// left column's distinct values that appear in the right column. Used both
// by tests and by the discovery matcher as a joinability signal.
func KeyOverlap(a, b *frame.Column) float64 {
	as := a.ValueSet()
	if len(as) == 0 {
		return 0
	}
	bs := b.ValueSet()
	inter := 0
	for k := range as {
		if _, ok := bs[k]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(as))
}
