package relational

import (
	"reflect"
	"testing"

	"autofeat/internal/frame"
)

func TestKeyIndexCacheInvalidateColumns(t *testing.T) {
	a := frame.NewIntColumn("a", []int64{1, 2, 3}, nil)
	b := frame.NewIntColumn("b", []int64{4, 5, 6}, nil)
	cache := NewKeyIndexCache()
	cache.index(a, Options{})
	cache.index(a, Options{Normalize: true})
	cache.index(b, Options{})
	if cache.Len() != 3 {
		t.Fatalf("Len = %d, want 3 resident indexes", cache.Len())
	}
	keptB := cache.Peek(b, false)
	if keptB == nil {
		t.Fatal("Peek must surface b's resident index")
	}

	// Invalidating a must drop exactly a's two entries (both normalize
	// variants) and leave b's untouched — by pointer identity.
	cache.InvalidateColumns([]*frame.Column{a})
	if cache.Len() != 1 {
		t.Fatalf("Len after invalidate = %d, want 1", cache.Len())
	}
	if cache.Peek(a, false) != nil || cache.Peek(a, true) != nil {
		t.Fatal("a's entries must be gone")
	}
	if got := cache.Peek(b, false); !sameMap(got, keptB) {
		t.Fatal("b's entry must survive untouched (pointer identity)")
	}

	// Peek must not count as a hit or miss, and nil/empty calls are
	// no-ops on a nil-safe receiver.
	if hits, _ := cache.Stats(); hits != 0 {
		t.Fatalf("Peek must not record hits, got %d", hits)
	}
	cache.InvalidateColumns(nil)
	var nilCache *KeyIndexCache
	nilCache.InvalidateColumns([]*frame.Column{a})
	if nilCache.Peek(a, false) != nil {
		t.Fatal("nil cache peeks nil")
	}

	// Same name, different column pointer: the cache keys on identity,
	// so a rebuilt column never aliases a stale index.
	a2 := frame.NewIntColumn("a", []int64{7, 8, 9}, nil)
	idx := cache.index(a2, Options{})
	if reflect.DeepEqual(idx, map[string]int{"1": 0, "2": 1, "3": 2}) {
		t.Fatal("fresh column must not see the old column's index")
	}
}

// sameMap reports pointer identity of two maps (reflect on the header).
func sameMap(x, y map[string]int) bool {
	return reflect.ValueOf(x).Pointer() == reflect.ValueOf(y).Pointer()
}
