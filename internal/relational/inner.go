package relational

import (
	"fmt"

	"autofeat/internal/frame"
)

// InnerJoin joins left with right keeping only matching rows. AutoFeat
// itself never uses inner joins — Section IV-B argues they remove rows and
// skew the class distribution — but the implementation exists so the
// join-type ablation can demonstrate exactly that effect, and so the
// relational engine is complete for downstream users.
//
// Cardinality is normalised the same way as LeftJoin (one representative
// right row per key), so the damage shown by the ablation is purely the
// row-removal effect the paper warns about.
func InnerJoin(left, right *frame.Frame, leftKey, rightKey string, opt Options) (*Result, error) {
	lc := left.Column(leftKey)
	if lc == nil {
		return nil, fmt.Errorf("relational: left table %q has no column %q", left.Name(), leftKey)
	}
	rc := right.Column(rightKey)
	if rc == nil {
		return nil, fmt.Errorf("relational: right table %q has no column %q", right.Name(), rightKey)
	}
	rowFor := buildKeyIndex(rc, opt)

	var leftIdx, rightIdx []int
	for i, n := 0, lc.Len(); i < n; i++ {
		k, ok := lc.Key(i)
		if !ok {
			continue
		}
		r, ok := rowFor[k]
		if !ok {
			continue
		}
		leftIdx = append(leftIdx, i)
		rightIdx = append(rightIdx, r)
	}

	out := left.Take(leftIdx)
	rightRows := right.Prefixed(right.Name()).Take(rightIdx)
	joined, err := out.ConcatCols(rightRows)
	if err != nil {
		return nil, err
	}
	added := joined.ColumnNames()[left.NumCols():]
	return &Result{
		Frame:        joined.WithName(left.Name()),
		AddedColumns: added,
		MatchedRows:  len(leftIdx),
	}, nil
}
