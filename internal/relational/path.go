package relational

import (
	"fmt"
	"math/rand"
	"strings"

	"autofeat/internal/frame"
)

// Hop is one edge of a join path: join the running result's column FromCol
// with table To on To's column ToCol.
type Hop struct {
	// FromCol is the fully-qualified column name ("table.column") in the
	// accumulated join result used as the left join key.
	FromCol string
	// To is the table joined in by this hop.
	To *frame.Frame
	// ToCol is the join column inside To (unqualified).
	ToCol string
}

// String renders the hop as "fromCol -> table.toCol".
func (h Hop) String() string {
	return fmt.Sprintf("%s -> %s.%s", h.FromCol, h.To.Name(), h.ToCol)
}

// Path is a multi-hop transitive join path rooted at a base table.
type Path []Hop

// String renders the path in the paper's arrow notation.
func (p Path) String() string {
	if len(p) == 0 {
		return "(empty path)"
	}
	parts := make([]string, len(p))
	for i, h := range p {
		parts[i] = h.String()
	}
	return strings.Join(parts, " ; ")
}

// Materialize applies the path as a sequence of left joins starting from
// base (whose columns must already be prefixed with its table name). It
// returns the final augmented frame and, per hop, the columns that hop
// added. The intermediate result of each hop is treated as the next base
// table, exactly as Section IV-B describes transitive joins.
func (p Path) Materialize(base *frame.Frame, opt Options) (*frame.Frame, [][]string, error) {
	cur := base
	added := make([][]string, 0, len(p))
	for i, h := range p {
		res, err := LeftJoin(cur, h.To, h.FromCol, h.ToCol, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("relational: hop %d (%s): %w", i, h, err)
		}
		cur = res.Frame
		added = append(added, res.AddedColumns)
	}
	return cur, added, nil
}

// MaterializeSampled behaves like Materialize but uses an rng-normalised
// join at every hop; exposed separately so callers can pass a nil rng
// through Options without building it themselves.
func (p Path) MaterializeSampled(base *frame.Frame, rng *rand.Rand) (*frame.Frame, [][]string, error) {
	return p.Materialize(base, Options{Normalize: true, Rng: rng})
}

// Tables returns the names of the tables joined along the path, in order.
func (p Path) Tables() []string {
	out := make([]string, len(p))
	for i, h := range p {
		out[i] = h.To.Name()
	}
	return out
}
