package relational

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autofeat/internal/frame"
)

func newFrame(t *testing.T, name string, cols ...*frame.Column) *frame.Frame {
	t.Helper()
	f := frame.New(name)
	for _, c := range cols {
		if err := f.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func applicants(t *testing.T) *frame.Frame {
	return newFrame(t, "applicants",
		frame.NewIntColumn("applicants.id", []int64{1, 2, 3, 4}, nil),
		frame.NewIntColumn("applicants.loan_approval", []int64{1, 0, 1, 0}, nil),
	)
}

func credit(t *testing.T) *frame.Frame {
	return newFrame(t, "credit",
		frame.NewIntColumn("person", []int64{2, 3, 5}, nil),
		frame.NewFloatColumn("score", []float64{650, 720, 800}, nil),
	)
}

func TestLeftJoinBasic(t *testing.T) {
	res, err := LeftJoin(applicants(t), credit(t), "applicants.id", "person", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Frame
	if out.NumRows() != 4 {
		t.Fatalf("left join must keep all 4 left rows, got %d", out.NumRows())
	}
	if len(res.AddedColumns) != 2 {
		t.Fatalf("added = %v", res.AddedColumns)
	}
	sc := out.Column("credit.score")
	if sc == nil {
		t.Fatalf("right columns must be prefixed: %v", out.ColumnNames())
	}
	if sc.IsValid(0) {
		t.Fatal("applicant 1 has no credit row -> null")
	}
	if sc.Float(1) != 650 || sc.Float(2) != 720 {
		t.Fatalf("join values wrong: %v", sc.Floats())
	}
	if res.MatchedRows != 2 {
		t.Fatalf("MatchedRows = %d, want 2", res.MatchedRows)
	}
	if got := res.MatchRatio(); got != 0.5 {
		t.Fatalf("MatchRatio = %v, want 0.5", got)
	}
	if got := res.Quality(); got != 0.5 {
		t.Fatalf("Quality = %v, want 0.5 (half the added cells null)", got)
	}
}

func TestLeftJoinPreservesLabelDistribution(t *testing.T) {
	base := applicants(t)
	wantDist, _ := base.ClassDistribution("applicants.loan_approval")
	// right side has duplicate keys (1:N join)
	right := newFrame(t, "dup",
		frame.NewIntColumn("k", []int64{2, 2, 2, 3}, nil),
		frame.NewFloatColumn("v", []float64{1, 2, 3, 4}, nil),
	)
	res, err := LeftJoin(base, right, "applicants.id", "k", Options{Normalize: true, Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	gotDist, _ := res.Frame.ClassDistribution("applicants.loan_approval")
	if len(gotDist) != len(wantDist) || gotDist[0] != wantDist[0] || gotDist[1] != wantDist[1] {
		t.Fatalf("label distribution changed: %v vs %v", gotDist, wantDist)
	}
	if res.Frame.NumRows() != base.NumRows() {
		t.Fatal("1:N join must not duplicate rows")
	}
}

func TestLeftJoinNormalizationPicksOneRow(t *testing.T) {
	base := newFrame(t, "b", frame.NewIntColumn("b.k", []int64{7}, nil))
	right := newFrame(t, "r",
		frame.NewIntColumn("k", []int64{7, 7, 7}, nil),
		frame.NewFloatColumn("v", []float64{10, 20, 30}, nil),
	)
	// Deterministic (no rng): first row wins.
	res, err := LeftJoin(base, right, "b.k", "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame.Column("r.v").Float(0) != 10 {
		t.Fatal("without rng the first row must win")
	}
	// With rng: some seed must pick a non-first row eventually.
	sawOther := false
	for seed := int64(0); seed < 20; seed++ {
		res, err := LeftJoin(base, right, "b.k", "k", Options{Normalize: true, Rng: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		if v := res.Frame.Column("r.v").Float(0); v != 10 {
			sawOther = true
			if v != 20 && v != 30 {
				t.Fatalf("picked a value not in the group: %v", v)
			}
		}
	}
	if !sawOther {
		t.Fatal("random normalisation never picked a non-first row across 20 seeds")
	}
}

func TestLeftJoinMissingColumns(t *testing.T) {
	if _, err := LeftJoin(applicants(t), credit(t), "ghost", "person", Options{}); err == nil {
		t.Fatal("missing left key must fail")
	}
	if _, err := LeftJoin(applicants(t), credit(t), "applicants.id", "ghost", Options{}); err == nil {
		t.Fatal("missing right key must fail")
	}
}

func TestLeftJoinNullKeysNeverMatch(t *testing.T) {
	base := newFrame(t, "b", frame.NewIntColumn("b.k", []int64{1, 2}, []bool{true, false}))
	right := newFrame(t, "r",
		frame.NewIntColumn("k", []int64{1, 2}, []bool{true, false}),
		frame.NewFloatColumn("v", []float64{10, 20}, nil),
	)
	res, err := LeftJoin(base, right, "b.k", "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedRows != 1 {
		t.Fatalf("null keys must not match: matched %d", res.MatchedRows)
	}
	if res.Frame.Column("r.v").IsValid(1) {
		t.Fatal("null left key row must get null right values")
	}
}

func TestLeftJoinIntFloatKeyCompat(t *testing.T) {
	base := newFrame(t, "b", frame.NewIntColumn("b.k", []int64{3}, nil))
	right := newFrame(t, "r",
		frame.NewFloatColumn("k", []float64{3.0}, nil),
		frame.NewFloatColumn("v", []float64{42}, nil),
	)
	res, err := LeftJoin(base, right, "b.k", "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedRows != 1 {
		t.Fatal("int 3 must join float 3.0")
	}
}

func TestLeftJoinNameCollision(t *testing.T) {
	base := newFrame(t, "b",
		frame.NewIntColumn("b.k", []int64{1}, nil),
		frame.NewIntColumn("r.v", []int64{99}, nil), // already has a column named like the incoming one
	)
	right := newFrame(t, "r",
		frame.NewIntColumn("k", []int64{1}, nil),
		frame.NewIntColumn("v", []int64{5}, nil),
	)
	res, err := LeftJoin(base, right, "b.k", "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AddedColumns) != 2 {
		t.Fatalf("added = %v", res.AddedColumns)
	}
	for _, name := range res.AddedColumns {
		if name == "r.v" {
			t.Fatalf("collision must be suffixed, got %v", res.AddedColumns)
		}
	}
}

func TestQualityPerfectAndEmpty(t *testing.T) {
	res := &Result{Frame: newFrame(t, "x", frame.NewIntColumn("a", []int64{1}, nil))}
	if res.Quality() != 1 {
		t.Fatal("no added columns -> quality 1")
	}
	empty := &Result{Frame: frame.New("e")}
	if empty.MatchRatio() != 0 {
		t.Fatal("empty frame match ratio 0")
	}
}

func TestKeyOverlap(t *testing.T) {
	a := frame.NewIntColumn("a", []int64{1, 2, 3, 4}, nil)
	b := frame.NewIntColumn("b", []int64{3, 4, 5}, nil)
	if got := KeyOverlap(a, b); got != 0.5 {
		t.Fatalf("overlap = %v, want 0.5", got)
	}
	empty := frame.NewIntColumn("e", nil, nil)
	if KeyOverlap(empty, b) != 0 {
		t.Fatal("empty left column -> 0")
	}
}

func TestPathMaterialize(t *testing.T) {
	base := applicants(t)
	creditT := newFrame(t, "credit",
		frame.NewIntColumn("person", []int64{1, 2, 3, 4}, nil),
		frame.NewIntColumn("bureau_id", []int64{10, 20, 30, 40}, nil),
	)
	history := newFrame(t, "history",
		frame.NewIntColumn("bureau", []int64{10, 20, 30, 40}, nil),
		frame.NewFloatColumn("defaults", []float64{0, 1, 0, 2}, nil),
	)
	p := Path{
		{FromCol: "applicants.id", To: creditT, ToCol: "person"},
		{FromCol: "credit.bureau_id", To: history, ToCol: "bureau"},
	}
	out, added, err := p.Materialize(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 4 {
		t.Fatal("row count must be preserved over 2 hops")
	}
	if !out.HasColumn("history.defaults") {
		t.Fatalf("transitive columns missing: %v", out.ColumnNames())
	}
	if out.Column("history.defaults").Float(3) != 2 {
		t.Fatal("transitive join value wrong")
	}
	if len(added) != 2 || len(added[1]) != 2 {
		t.Fatalf("added columns per hop wrong: %v", added)
	}
	if got := p.String(); got == "" || got == "(empty path)" {
		t.Fatal("path string broken")
	}
	if tabs := p.Tables(); tabs[0] != "credit" || tabs[1] != "history" {
		t.Fatalf("Tables = %v", tabs)
	}
}

func TestPathMaterializeBadHop(t *testing.T) {
	base := applicants(t)
	p := Path{{FromCol: "nope", To: credit(t), ToCol: "person"}}
	if _, _, err := p.Materialize(base, Options{}); err == nil {
		t.Fatal("bad hop must fail")
	}
}

func TestPathMaterializeSampledDeterministic(t *testing.T) {
	base := applicants(t)
	dup := newFrame(t, "dup",
		frame.NewIntColumn("k", []int64{2, 2, 3}, nil),
		frame.NewFloatColumn("v", []float64{5, 6, 7}, nil),
	)
	p := Path{{FromCol: "applicants.id", To: dup, ToCol: "k"}}
	a, _, err := p.MaterializeSampled(base, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := p.MaterializeSampled(base, rand.New(rand.NewSource(4)))
	if !a.Equal(b) {
		t.Fatal("same seed must give identical materialisation")
	}
}

func TestEmptyPathString(t *testing.T) {
	if (Path{}).String() != "(empty path)" {
		t.Fatal("empty path rendering")
	}
}

func TestQualityWithNaNFloats(t *testing.T) {
	// Quality counts null bitmap entries, not NaN payloads.
	base := newFrame(t, "b", frame.NewIntColumn("b.k", []int64{1, 2}, nil))
	right := newFrame(t, "r",
		frame.NewIntColumn("k", []int64{1, 2}, nil),
		frame.NewFloatColumn("v", []float64{math.NaN(), 1}, nil),
	)
	res, err := LeftJoin(base, right, "b.k", "k", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality() != 1 {
		t.Fatal("NaN payload with valid bitmap counts as present")
	}
}

// Property: a left join preserves the left row count and label multiset
// for ANY right-side key overlap, duplication, or null pattern.
func TestLeftJoinPreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		ids := make([]int64, n)
		ys := make([]int64, n)
		for i := range ids {
			ids[i] = int64(rng.Intn(n)) // duplicates allowed on the left too
			ys[i] = int64(rng.Intn(2))
		}
		left := frame.New("l")
		if left.AddColumn(frame.NewIntColumn("l.k", ids, nil)) != nil {
			return false
		}
		if left.AddColumn(frame.NewIntColumn("l.y", ys, nil)) != nil {
			return false
		}
		m := 1 + rng.Intn(80)
		rk := make([]int64, m)
		rv := make([]float64, m)
		valid := make([]bool, m)
		for i := range rk {
			rk[i] = int64(rng.Intn(n * 2)) // partial overlap
			rv[i] = rng.NormFloat64()
			valid[i] = rng.Intn(10) > 0
		}
		right := frame.New("r")
		if right.AddColumn(frame.NewIntColumn("k", rk, valid)) != nil {
			return false
		}
		if right.AddColumn(frame.NewFloatColumn("v", rv, nil)) != nil {
			return false
		}
		res, err := LeftJoin(left, right, "l.k", "k", Options{Normalize: true, Rng: rng})
		if err != nil {
			return false
		}
		if res.Frame.NumRows() != n {
			return false
		}
		before, _ := left.ClassDistribution("l.y")
		after, _ := res.Frame.ClassDistribution("l.y")
		return before[0] == after[0] && before[1] == after[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKeyIndexCacheReuse(t *testing.T) {
	base := applicants(t)
	right := credit(t)
	cache := NewKeyIndexCache()
	// Two joins against the same right column: one miss, then one hit, and
	// identical output to the uncached join.
	for i := 0; i < 2; i++ {
		cached, err := LeftJoin(base, right, "applicants.id", "person", Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := LeftJoin(base, right, "applicants.id", "person", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !cached.Frame.Equal(plain.Frame) {
			t.Fatalf("iteration %d: cached join differs from uncached", i)
		}
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestKeyIndexCacheKeying(t *testing.T) {
	rc := credit(t).Column("person")
	cache := NewKeyIndexCache()
	// Deterministic (non-random) indexes ignore the seed: any Seed value
	// shares one entry.
	cache.index(rc, Options{})
	cache.index(rc, Options{Seed: 42})
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("deterministic keying: %d hits / %d misses, want 1/1", hits, misses)
	}
	// Randomised normalisation keys on the seed: distinct seeds are
	// distinct entries, the same seed is a hit.
	cache.index(rc, Options{Normalize: true, Rng: rand.New(rand.NewSource(1)), Seed: 1})
	cache.index(rc, Options{Normalize: true, Rng: rand.New(rand.NewSource(2)), Seed: 2})
	cache.index(rc, Options{Normalize: true, Rng: rand.New(rand.NewSource(1)), Seed: 1})
	if hits, misses := cache.Stats(); hits != 2 || misses != 3 {
		t.Fatalf("random keying: %d hits / %d misses, want 2/3", hits, misses)
	}
	// Normalize without Rng is the same deterministic first-occurrence
	// index as Normalize=false builds... but cardinality handling differs
	// downstream, so the cache must still key them apart.
	cache.index(rc, Options{Normalize: true})
	if hits, misses := cache.Stats(); hits != 2 || misses != 4 {
		t.Fatalf("normalize-deterministic keying: %d hits / %d misses, want 2/4", hits, misses)
	}
	// A nil cache stays inert and nil-safe.
	var nilCache *KeyIndexCache
	if idx := nilCache.index(rc, Options{}); len(idx) != 3 {
		t.Fatalf("nil cache must still build the index, got %v", idx)
	}
	if hits, misses := nilCache.Stats(); hits != 0 || misses != 0 {
		t.Fatal("nil cache stats must be zero")
	}
}

func TestKeyIndexCacheSeedContract(t *testing.T) {
	// The Options.Seed contract: when Rng is derived from Seed, a cache hit
	// (which skips Rng entirely) yields the same join as the original build.
	base := newFrame(t, "b",
		frame.NewIntColumn("b.id", []int64{1, 2, 3, 4}, nil),
	)
	right := newFrame(t, "dup",
		frame.NewIntColumn("k", []int64{2, 2, 2, 3, 3}, nil),
		frame.NewFloatColumn("v", []float64{1, 2, 3, 4, 5}, nil),
	)
	cache := NewKeyIndexCache()
	opts := func() Options {
		return Options{Normalize: true, Rng: rand.New(rand.NewSource(5)), Seed: 5, Cache: cache}
	}
	r1, err := LeftJoin(base, right, "b.id", "k", opts())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := LeftJoin(base, right, "b.id", "k", opts())
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Frame.Equal(r2.Frame) {
		t.Fatal("cache hit must reproduce the seeded normalisation exactly")
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Fatalf("second join must hit the cache, hits = %d", hits)
	}
}
