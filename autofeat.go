// Package autofeat is the public API of the AutoFeat reproduction:
// ranking-based transitive feature discovery over join paths (Ionescu et
// al., ICDE 2024). Given a base table with a classification label and a
// collection of candidate tables, AutoFeat builds a Dataset Relation
// Graph (DRG), explores multi-hop join paths breadth-first, prunes
// low-quality joins, selects relevant and non-redundant features with
// Spearman + MRMR, ranks the surviving paths without training a model,
// and finally trains the target model only on the top-k paths.
//
// The primary entry points are OpenLake (load a lake once, keep it
// resident) and Lake.Discover (run one augmentation request against it);
// the Lake memoises the Dataset Relation Graph per matcher setting and
// shares a join-key index cache across requests, so repeated discoveries
// skip the paper's offline phase entirely:
//
//	lk, _ := autofeat.OpenLake("lake/")             // offline phase, paid once
//	res, _ := lk.Discover(ctx, autofeat.Request{
//	        Base: "orders", Label: "churned", Model: "lightgbm",
//	})
//	fmt.Println(res.Augment.Best.Path, res.Augment.Best.Eval.Accuracy)
//
// Context-first methods are the canonical pipeline API:
// Discovery.RunContext and Discovery.AugmentContext (Run and Augment are
// the same calls under context.Background()). The pre-Lake package-level
// constructors (ReadTablesDir, DiscoverDRG, DiscoverDRGSketched,
// NewDiscovery) remain as deprecated thin wrappers over the Lake path.
package autofeat

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"autofeat/internal/core"
	"autofeat/internal/discovery"
	"autofeat/internal/errs"
	"autofeat/internal/frame"
	"autofeat/internal/fselect"
	"autofeat/internal/graph"
	"autofeat/internal/lake"
	"autofeat/internal/ml"
	"autofeat/internal/obsrv"
	"autofeat/internal/relational"
	"autofeat/internal/telemetry"
)

// Error taxonomy. Every error AutoFeat returns for a cause the caller can
// act on matches exactly one of these sentinels under errors.Is; wrapped
// causes (an *fs.PathError, context.DeadlineExceeded, ...) stay reachable
// through errors.As / errors.Is on the same chain.
var (
	// ErrBadInput classifies malformed user input: unreadable or corrupt
	// CSVs, unknown model or metric names, invalid configuration.
	ErrBadInput = errs.ErrBadInput
	// ErrBudgetExceeded classifies an exhausted resource budget
	// (Config.MaxEvalJoins, Config.MaxJoinedRows). Discovery itself does
	// not error on budgets — it degrades to a Partial ranking — so this
	// surfaces only from callers that choose to treat Partial as fatal.
	ErrBudgetExceeded = errs.ErrBudgetExceeded
	// ErrCancelled classifies aborts caused by a cancelled context or an
	// expired deadline; the context's own error is in the wrap chain.
	ErrCancelled = errs.ErrCancelled
)

// Table is a named, typed, columnar table — the unit of the data lake.
type Table = frame.Frame

// Column is one typed column of a Table.
type Column = frame.Column

// Graph is the Dataset Relation Graph: an undirected weighted multigraph
// of datasets and join opportunities.
type Graph = graph.Graph

// Edge is one join opportunity between two datasets.
type Edge = graph.Edge

// KFK declares a known key–foreign-key constraint for BuildDRG.
type KFK = discovery.KFK

// Config holds AutoFeat's hyper-parameters (τ, κ, metrics, top-k, ...).
type Config = core.Config

// Discovery is a configured AutoFeat run over a DRG.
type Discovery = core.Discovery

// Ranking is the ordered list of scored join paths a discovery produces.
type Ranking = core.Ranking

// RankedPath is one scored join path with its selected features.
type RankedPath = core.RankedPath

// AugmentResult is the end-to-end output: best path, augmented table,
// trained feature set and timings.
type AugmentResult = core.AugmentResult

// ModelFactory builds fresh classifier instances for evaluation.
type ModelFactory = ml.Factory

// EvalResult reports a model evaluation (accuracy, AUC, F1).
type EvalResult = ml.EvalResult

// DefaultConfig returns the paper's evaluation configuration: τ = 0.65,
// κ = 15, Spearman relevance, MRMR redundancy.
func DefaultConfig() Config { return core.DefaultConfig() }

// Lake is a resident data-lake session — the primary entry point of the
// package. A Lake loads its tables once, memoises the DRG per (matcher,
// threshold) or KFK set, and shares one join-key index cache across every
// discovery run against it, so repeated discoveries skip the paper's
// offline phase. Safe for concurrent use; the long-lived discovery
// service (`autofeat serve`) schedules many overlapping requests against
// one Lake.
type Lake = lake.Lake

// LakeOption configures a Lake at open time or overrides its defaults
// for one DRG build / Discover call: WithMatcher, WithThreshold,
// WithKFKs.
type LakeOption = lake.Option

// MatcherKind names a DRG construction strategy: MatcherExact or
// MatcherSketched.
type MatcherKind = lake.MatcherKind

// DRG matcher kinds selectable with WithMatcher.
const (
	// MatcherExact is the COMA-style composite matcher with exact
	// value-set containment (the paper's data-lake setting).
	MatcherExact = lake.MatcherExact
	// MatcherSketched replaces exact value-set intersection with MinHash
	// sketches — constant-time column comparisons for large lakes.
	MatcherSketched = lake.MatcherSketched
)

// Request describes one discovery run against a Lake: base table, label
// column, optional model name and per-request overrides.
type Request = lake.Request

// LakeResult is the outcome of one Lake.Discover call: ranking,
// optional model evaluation, provenance manifest, and cache/graph
// warmth indicators.
type LakeResult = lake.Result

// KeyIndexCache memoises the right-side key→row indexes the join engine
// builds, shared across runs by a Lake. See Config.KeyCache.
type KeyIndexCache = relational.KeyIndexCache

// NewKeyIndexCache returns an empty join-key index cache for
// Config.KeyCache; Lakes create and share one automatically.
func NewKeyIndexCache() *KeyIndexCache { return relational.NewKeyIndexCache() }

// Format selects the on-disk table format OpenLake reads; see
// WithFormat.
type Format = lake.Format

// Lake formats selectable with WithFormat.
const (
	// FormatAuto (the default) detects per table: *.csv and columnar
	// *.afc files may coexist, a packed table shadowing its source CSV.
	FormatAuto = lake.FormatAuto
	// FormatCSV pins the legacy text path: only *.csv files are read.
	FormatCSV = lake.FormatCSV
	// FormatColumnar pins the packed path: only *.afc files are read
	// (produce them with PackLake or `autofeat pack`).
	FormatColumnar = lake.FormatColumnar
)

// OpenLake loads every table file in dir (sorted by table name) as a
// resident Lake session. By default both *.csv and packed columnar
// *.afc tables load (WithFormat pins one); packed tables open
// zero-copy with their discovery sketches precomputed, which is what
// makes cold opens of large lakes cheap — see PackLake. Options set the
// lake-wide DRG defaults: matcher kind (WithMatcher), threshold
// (WithThreshold) or declared constraints (WithKFKs). A directory
// without table files is an error; an unparsable file aborts with an
// ErrBadInput-matching error naming it.
func OpenLake(dir string, opts ...LakeOption) (*Lake, error) { return lake.Open(dir, opts...) }

// PackLake converts a CSV lake directory in place: every *.csv table is
// rewritten as a columnar *.afc file with persisted per-column stats
// and MinHash sketches (atomic tmp+rename per table; the CSVs stay, and
// FormatAuto prefers the packed files from then on). Returns the number
// of tables packed. The CLI equivalent is `autofeat pack <dir>`.
func PackLake(dir string) (int, error) { return lake.Pack(dir) }

// WithFormat selects the table format OpenLake reads: FormatAuto (the
// default), FormatCSV or FormatColumnar.
func WithFormat(f Format) LakeOption { return lake.WithFormat(f) }

// OpenLakeLenient loads a lake like OpenLake but skips files that fail
// to parse instead of aborting; each skipped file is reported as an
// ErrBadInput-matching error.
func OpenLakeLenient(dir string, opts ...LakeOption) (*Lake, []error) {
	return lake.OpenLenient(dir, opts...)
}

// NewLake wraps already-loaded tables as a resident Lake session.
func NewLake(tables []*Table, opts ...LakeOption) *Lake { return lake.New(tables, opts...) }

// WithMatcher selects the schema-matching strategy used to build DRGs
// (MatcherExact by default). It replaces the DiscoverDRG /
// DiscoverDRGSketched constructor pair.
func WithMatcher(kind MatcherKind) LakeOption { return lake.WithMatcher(kind) }

// WithThreshold sets the matcher threshold above which a column
// correspondence becomes a DRG edge (0.55 by default, the paper's
// data-lake setting).
func WithThreshold(t float64) LakeOption { return lake.WithThreshold(t) }

// WithKFKs switches DRG construction to the curated benchmark setting:
// only the declared key–foreign-key constraints become weight-1 edges
// and the matcher settings are ignored.
func WithKFKs(constraints []KFK) LakeOption { return lake.WithKFKs(constraints) }

// NewDiscovery prepares an AutoFeat run: base names the base table node in
// g, label the label column inside it.
//
// Deprecated: use OpenLake (or NewLake) and Lake.Discover — or
// Lake.NewDiscovery when the two-step prepare/run flow is needed. The
// Lake path reuses key-index caches across runs; this wrapper builds a
// fresh single-use session around g.
func NewDiscovery(g *Graph, base, label string, cfg Config) (*Discovery, error) {
	return lake.FromGraph(g).NewDiscovery(base, label, cfg)
}

// ReadTableCSV loads one CSV file (with header) as a Table; the table name
// is the file name without extension. Column types are inferred.
func ReadTableCSV(path string) (*Table, error) { return frame.ReadCSVFile(path) }

// ReadTable parses CSV from a reader under the given table name.
func ReadTable(name string, r io.Reader) (*Table, error) { return frame.ReadCSV(name, r) }

// ReadTablesDir loads every *.csv in a directory as tables, sorted by
// name. It is the CSV-only legacy path: columnar *.afc files are
// ignored even when present.
//
// Deprecated: use OpenLake, which loads the same files once into a
// resident session (Lake.Tables returns this slice) and also reads
// packed columnar tables.
func ReadTablesDir(dir string) ([]*Table, error) {
	l, err := lake.Open(dir, lake.WithFormat(lake.FormatCSV))
	if err != nil {
		return nil, err
	}
	return l.Tables(), nil
}

// ReadTablesDirLenient loads every *.csv in a directory like ReadTablesDir
// but skips files that fail to parse instead of aborting the whole lake:
// one corrupt table then prunes only the join paths that would have passed
// through it. The skipped files are reported as errors (each matching
// ErrBadInput), so callers can log what was dropped. With every file
// corrupt, the table slice is empty and errs holds one entry per file.
// Like ReadTablesDir, this is the CSV-only legacy path.
//
// Deprecated: use OpenLakeLenient, the session-returning equivalent.
func ReadTablesDirLenient(dir string) (tables []*Table, errors []error) {
	l, errors := lake.OpenLenient(dir, lake.WithFormat(lake.FormatCSV))
	if l == nil {
		return nil, errors
	}
	return l.Tables(), errors
}

// BuildDRG constructs the DRG from known KFK constraints (the curated
// "benchmark setting"): every constraint becomes a weight-1 edge. The
// Lake equivalent is OpenLake(dir, WithKFKs(constraints)) followed by
// Lake.DRG.
func BuildDRG(tables []*Table, constraints []KFK) (*Graph, error) {
	return discovery.BuildBenchmarkDRG(tables, constraints)
}

// DiscoverDRG constructs the DRG with the built-in COMA-style composite
// matcher (the "data lake setting"): every column correspondence scoring
// at or above threshold becomes a weighted edge. The paper uses threshold
// 0.55.
//
// Deprecated: use NewLake(tables).DRG(WithThreshold(threshold)) — or
// OpenLake with the same options — which memoises the graph for reuse
// across requests.
func DiscoverDRG(tables []*Table, threshold float64) (*Graph, error) {
	return NewLake(tables).DRG(WithThreshold(threshold))
}

// DiscoverDRGSketched builds the DRG with MinHash-sketched instance
// evidence instead of exact value-set intersection — constant-time column
// comparisons for lakes whose tables are too large to intersect exactly.
//
// Deprecated: use NewLake(tables).DRG(WithMatcher(MatcherSketched),
// WithThreshold(threshold)); the sketched/exact choice is a LakeOption,
// not a separate constructor.
func DiscoverDRGSketched(tables []*Table, threshold float64) (*Graph, error) {
	return NewLake(tables).DRG(WithMatcher(MatcherSketched), WithThreshold(threshold))
}

// Discover is the one-call convenience over the Lake path: open dir,
// build (or reuse) the DRG and run one request. Long-lived callers
// should hold the Lake from OpenLake instead, so consecutive requests
// hit its caches.
func Discover(ctx context.Context, dir string, req Request, opts ...LakeOption) (*LakeResult, error) {
	l, err := OpenLake(dir, opts...)
	if err != nil {
		return nil, err
	}
	return l.Discover(ctx, req)
}

// SaveGraph persists a DRG's structure (node names and edges, not table
// data) as JSON — the offline phase's output. Reload with LoadGraph.
func SaveGraph(g *Graph, path string) error { return g.SaveFile(path) }

// LoadGraph reconstructs a DRG from a SaveGraph file, re-attaching the
// given tables (every node must have a matching table).
func LoadGraph(path string, tables []*Table) (*Graph, error) {
	return graph.LoadFile(path, tables)
}

// TuneOutcome reports an AutoTune grid search.
type TuneOutcome = core.TuneOutcome

// TuneResult is one configuration evaluated by AutoTune.
type TuneResult = core.TuneResult

// AutoTune grid-searches the τ and κ hyper-parameters around cfg (the
// paper's future-work "dynamic hyper-parameter tuning") and returns the
// best configuration by model accuracy. Empty grids use the defaults
// τ ∈ {0.5, 0.65, 0.8}, κ ∈ {10, 15, 20}.
func AutoTune(g *Graph, base, label string, cfg Config, factory ModelFactory, taus []float64, kappas []int) (*TuneOutcome, error) {
	return core.AutoTune(g, base, label, cfg, factory, taus, kappas)
}

// Telemetry is the observability collector of the online pipeline:
// attach one to Config.Telemetry and every phase of a run (BFS levels,
// join materialisation, relevance/redundancy analysis, ranking, model
// training) records spans and metrics into it. Nil disables collection.
type Telemetry = telemetry.Collector

// TelemetrySnapshot is a point-in-time capture of a Telemetry collector:
// counters, gauges, histograms and the span list.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetrySink consumes a snapshot: telemetry.NopSink, telemetry.JSONSink
// or telemetry.ReportSink.
type TelemetrySink = telemetry.Sink

// PruneStats is the by-reason pruning breakdown of a Ranking
// (similarity, join_failed, quality_below_tau, beam_evicted,
// max_paths_cap, budget_exhausted, cancelled).
type PruneStats = core.PruneStats

// NewTelemetry returns a live collector for Config.Telemetry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// TraceStore is the bounded in-memory trace retention behind the
// introspection server's /v1/traces endpoints: attach one to a Telemetry
// collector with Telemetry.ObserveSpans and every finished span is
// grouped by trace ID, evicting whole traces FIFO past the cap.
type TraceStore = telemetry.TraceStore

// FlightRecorder is the fixed-size ring buffer of recently finished
// spans behind /debug/flight — a postmortem view that survives trace
// store eviction.
type FlightRecorder = telemetry.FlightRecorder

// NewTraceStore returns a trace store retaining at most maxTraces traces
// of maxSpansPerTrace spans each (0 picks the defaults, 256 and 4096).
func NewTraceStore(maxTraces, maxSpansPerTrace int) *TraceStore {
	return telemetry.NewTraceStore(maxTraces, maxSpansPerTrace)
}

// NewFlightRecorder returns a flight recorder holding the last capacity
// spans (0 picks the default, 256).
func NewFlightRecorder(capacity int) *FlightRecorder {
	return telemetry.NewFlightRecorder(capacity)
}

// WriteTraceFile writes a snapshot's span trace as JSON ({"spans": [...]}).
func WriteTraceFile(path string, s *TelemetrySnapshot) error {
	return telemetry.WriteTraceFile(path, s)
}

// WriteMetricsFile writes a snapshot's counters, gauges, histograms,
// pruning breakdown and per-phase durations as JSON.
func WriteMetricsFile(path string, s *TelemetrySnapshot) error {
	return telemetry.WriteMetricsFile(path, s)
}

// TelemetryReport renders a snapshot as a human-readable run report.
func TelemetryReport(w io.Writer, s *TelemetrySnapshot) error {
	return telemetry.ReportSink{W: w}.Flush(s)
}

// RunProgress is the live run tracker behind the introspection server's
// /runs/{id} endpoint: attach one to Config.Progress and the discovery
// pipeline publishes BFS depth, frontier size, per-reason prune counts,
// budget consumption and worker occupancy into it, lock-cheap and nil-safe.
type RunProgress = obsrv.RunProgress

// RunStatus is the JSON document a RunProgress snapshot renders to — the
// payload of GET /runs/{id}.
type RunStatus = obsrv.RunStatus

// IntrospectionConfig configures an introspection Server.
type IntrospectionConfig = obsrv.Config

// IntrospectionServer is the embeddable HTTP introspection server:
// /metrics (Prometheus text), /healthz, /runs and /runs/{id}, optionally
// sharing its mux with the net/http/pprof handlers.
type IntrospectionServer = obsrv.Server

// NewRunProgress returns a live tracker for Config.Progress under the
// given run id.
func NewRunProgress(id string) *RunProgress { return obsrv.NewRunProgress(id) }

// NewIntrospectionServer builds an introspection server; call
// ListenAndServe to serve it or Handler to mount it elsewhere.
func NewIntrospectionServer(cfg IntrospectionConfig) *IntrospectionServer {
	return obsrv.NewServer(cfg)
}

// NewLogger returns a structured logger for Config.Logger writing to w at
// the given level; format "json" selects JSON output, anything else text.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	return telemetry.NewLogger(w, level, format)
}

// ParseLogLevel parses a -log-level flag value ("debug", "info", "warn",
// "error"); ok is false for the empty string, "off" and "none", which
// disable logging.
func ParseLogLevel(s string) (level slog.Level, ok bool, err error) {
	return telemetry.ParseLogLevel(s)
}

// Manifest is the per-run provenance record (run_manifest.json): config
// snapshot, graph inventory and the full lineage of every ranked path —
// joins taken, similarity and data-quality at each decision point, and the
// relevance/redundancy score of every selected feature.
type Manifest = core.Manifest

// PathLineage is the provenance of one ranked path inside a Manifest.
type PathLineage = core.PathLineage

// WriteManifestFile writes a manifest to path as indented JSON.
func WriteManifestFile(path string, m *Manifest) error {
	return core.WriteManifestFile(path, m)
}

// ReadManifestFile parses a run_manifest.json document.
func ReadManifestFile(path string) (*Manifest, error) {
	return core.ReadManifestFile(path)
}

// Relevance is a pluggable relevance metric for Config (ablation studies).
type Relevance = fselect.Relevance

// Redundancy is a pluggable redundancy metric for Config.
type Redundancy = fselect.Redundancy

// RelevanceMetric returns the named relevance metric: "spearman",
// "pearson", "ig", "su", "relief". Unknown names return nil, which
// disables the relevance stage.
func RelevanceMetric(name string) Relevance { return fselect.RelevanceByName(name) }

// RedundancyMetric returns the named redundancy metric: "mrmr", "mifs",
// "cife", "jmi", "cmim". Unknown names return nil, which disables the
// redundancy stage.
func RedundancyMetric(name string) Redundancy { return fselect.RedundancyByName(name) }

// Model returns the named model factory. The supported names are
// "lightgbm", "xgboost", "randomforest", "extratrees" (tree ensembles)
// and "knn", "lr_l1" (k-nearest-neighbours, L1-regularised logistic
// regression). Model panics on an unknown name.
//
// Prefer ModelByName, which returns an ErrBadInput-matching error
// instead of panicking — it is the form every cmd/ tool and example
// uses (enforced by a repo test). Model remains only for compiled-in
// literal names in short scripts.
func Model(name string) ModelFactory {
	f, ok := ml.FactoryByName(name)
	if !ok {
		panic(fmt.Sprintf("autofeat: unknown model %q (see Models())", name))
	}
	return f
}

// ModelByName returns the named model factory, or an ErrBadInput-matching
// error listing the supported names when the name is unknown. Same name
// set as Model.
func ModelByName(name string) (ModelFactory, error) {
	f, ok := ml.FactoryByName(name)
	if !ok {
		known := make([]string, 0, 6)
		for _, m := range Models() {
			known = append(known, m.Name)
		}
		return ModelFactory{}, errs.BadInput("autofeat: unknown model %q (supported: %s)", name, strings.Join(known, ", "))
	}
	return f, nil
}

// Models lists every available model factory.
func Models() []ModelFactory {
	return append(ml.TreeFactories(), ml.NonTreeFactories()...)
}
