package autofeat

// The benchmark suite regenerates every table and figure of the paper's
// evaluation. Each BenchmarkX prints the corresponding report once to
// stdout (the testing package would truncate long b.Log output) and
// measures the end-to-end harness cost. The suite runs at "quick" scale
// (datagen.QuickSpecs: rows ≤ 1200, ≤ 8 tables, ≤ 30 features);
// cmd/experiments runs the same experiments at full Table II scale.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"testing"

	"autofeat/internal/bench"
	"autofeat/internal/datagen"
	"autofeat/internal/telemetry"
)

var (
	quickOnce   sync.Once
	quickShared *bench.Runner
)

// quickRunner returns a shared runner so figures reuse cached sweeps,
// exactly as cmd/experiments does.
func quickRunner() *bench.Runner {
	quickOnce.Do(func() {
		quickShared = bench.NewRunner(datagen.QuickSpecs(), 7)
	})
	return quickShared
}

func logReport(b *testing.B, rep *bench.Report, i int) {
	b.Helper()
	if i == 0 {
		// Printed to stdout, not b.Log: the testing package truncates
		// long benchmark logs, and these tables ARE the deliverable.
		fmt.Println(rep)
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logReport(b, bench.TableI(), i)
	}
}

func BenchmarkTableII(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.TableII()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkFigure3a(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.Figure3a()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkFigure3b(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.Figure3b()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkFigure4(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkFigure5(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkFigure6(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkFigure7(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkFigure8(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		reps, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range reps {
			logReport(b, rep, i)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkFigure1(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkAblationTraversal(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.AblationTraversal()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkAblationCardinality(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.AblationCardinality()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkAblationSimPrune(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.AblationSimPrune()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkAblationBins(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.AblationBins()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

func BenchmarkAblationStreaming(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.AblationStreaming()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}

// Micro-benchmarks for the hot substrate paths, so regressions in the
// engine itself are visible independent of the experiment harness.

func BenchmarkMicroLeftJoin(b *testing.B) {
	d, err := datagen.Generate(datagen.SmallSpecs()[1])
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		b.Fatal(err)
	}
	disc, err := NewDiscovery(g, d.Base.Name(), d.Label, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ranking, err := disc.Run()
	if err != nil {
		b.Fatal(err)
	}
	if len(ranking.Paths) == 0 {
		b.Fatal("no paths")
	}
	base := d.Base.Prefixed(d.Base.Name())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := disc.MaterializePath(ranking.Paths[0], base); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroDiscovery(b *testing.B) {
	d, err := datagen.Generate(datagen.SmallSpecs()[1])
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disc, err := NewDiscovery(g, d.Base.Name(), d.Label, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := disc.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroDiscoveryTelemetry is the overhead guard for the
// observability layer: compare against BenchmarkMicroDiscovery (same
// workload with Config.Telemetry nil) to measure the cost of full span
// and metric collection. The disabled path (nil collector) is exercised
// by BenchmarkMicroDiscovery itself, since every call site goes through
// the nil-safe Trace()/Meter() accessors either way.
func BenchmarkMicroDiscoveryTelemetry(b *testing.B) {
	d, err := datagen.Generate(datagen.SmallSpecs()[1])
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Telemetry = NewTelemetry()
		disc, err := NewDiscovery(g, d.Base.Name(), d.Label, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := disc.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroDiscoveryObserved is the full-observability variant of
// the overhead guard: telemetry, a live RunProgress tracker and a
// debug-level structured logger (to io.Discard) are all attached, the
// worst case a production run can configure. Compare against
// BenchmarkMicroDiscovery (everything nil) — the acceptance bound for the
// disabled path is <2%, and this benchmark bounds the enabled path.
func BenchmarkMicroDiscoveryObserved(b *testing.B) {
	d, err := datagen.Generate(datagen.SmallSpecs()[1])
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Telemetry = NewTelemetry()
		cfg.Progress = NewRunProgress("bench")
		cfg.Logger = NewLogger(io.Discard, slog.LevelDebug, "json")
		disc, err := NewDiscovery(g, d.Base.Name(), d.Label, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := disc.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroDiscoveryTraced is the overhead guard for the request
// tracer: on top of BenchmarkMicroDiscoveryTelemetry's collector it
// attaches a trace store and flight recorder as span observers and runs
// under a remote trace context, so every span is identified, copied and
// fanned out the way a served job's spans are. Compare against
// BenchmarkMicroDiscoveryTelemetry for the tracing increment and against
// BenchmarkMicroDiscovery for the total observability cost;
// cmd/benchdiff gates both via BENCH_traced.json.
func BenchmarkMicroDiscoveryTraced(b *testing.B) {
	d, err := datagen.Generate(datagen.SmallSpecs()[1])
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		b.Fatal(err)
	}
	remote, _ := telemetry.ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Telemetry = NewTelemetry()
		cfg.Telemetry.ObserveSpans(NewTraceStore(0, 0), NewFlightRecorder(0))
		disc, err := NewDiscovery(g, d.Base.Name(), d.Label, cfg)
		if err != nil {
			b.Fatal(err)
		}
		ctx := telemetry.ContextWithRemote(context.Background(), remote)
		if _, err := disc.RunContext(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDiscoveryWorkers measures end-to-end discovery on the wide
// worker-scaling dataset at a fixed worker-pool size. Compare Workers1
// against Workers4/Workers8 for the parallel join-evaluation speedup
// (bounded by GOMAXPROCS; the ranking is identical at every count).
func benchDiscoveryWorkers(b *testing.B, workers int) {
	b.Helper()
	d, err := datagen.Generate(datagen.ParallelSpec())
	if err != nil {
		b.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Workers = workers
		disc, err := NewDiscovery(g, d.Base.Name(), d.Label, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := disc.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroDiscoveryWorkers1(b *testing.B) { benchDiscoveryWorkers(b, 1) }
func BenchmarkMicroDiscoveryWorkers4(b *testing.B) { benchDiscoveryWorkers(b, 4) }
func BenchmarkMicroDiscoveryWorkers8(b *testing.B) { benchDiscoveryWorkers(b, 8) }

func BenchmarkMicroMatcher(b *testing.B) {
	d, err := datagen.Generate(datagen.SmallSpecs()[1])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiscoverDRG(d.Tables, 0.55); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJoinType(b *testing.B) {
	r := quickRunner()
	for i := 0; i < b.N; i++ {
		rep, err := r.AblationJoinType()
		if err != nil {
			b.Fatal(err)
		}
		logReport(b, rep, i)
	}
}
