package autofeat

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"autofeat/internal/datagen"
	"autofeat/internal/telemetry"
)

// TestWriteTracedBench regenerates BENCH_traced.json, the committed
// tracing-overhead baseline cmd/benchdiff gates. It is gated behind
// AUTOFEAT_TRACED_BENCH_OUT so plain `go test` stays fast:
//
//	AUTOFEAT_TRACED_BENCH_OUT=BENCH_traced.json go test -run TestWriteTracedBench .
//
// (or `make bench`, which does the same). "nop" is discovery with no
// collector attached — every call site still crosses the nil-safe
// Trace()/Meter() accessors. "traced" is the full request-tracing path a
// served job pays: a live collector, a trace store and flight recorder
// observing every finished span, and a remote trace context so span
// identity is inherited rather than freshly rooted. The recorded ratio
// is the end-to-end cost of request-scoped tracing.
func TestWriteTracedBench(t *testing.T) {
	out := os.Getenv("AUTOFEAT_TRACED_BENCH_OUT")
	if out == "" {
		t.Skip("set AUTOFEAT_TRACED_BENCH_OUT=<path> to write the tracing-overhead baseline")
	}
	spec := datagen.SmallSpecs()[1]
	ds, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildDRG(ds.Tables, ds.KFKs)
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := telemetry.ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	const iters = 15

	nopNs := minNsPerOp(t, iters, func() error {
		disc, err := NewDiscovery(g, ds.Base.Name(), ds.Label, DefaultConfig())
		if err != nil {
			return err
		}
		_, err = disc.Run()
		return err
	})

	tracedNs := minNsPerOp(t, iters, func() error {
		cfg := DefaultConfig()
		cfg.Telemetry = NewTelemetry()
		cfg.Telemetry.ObserveSpans(NewTraceStore(0, 0), NewFlightRecorder(0))
		disc, err := NewDiscovery(g, ds.Base.Name(), ds.Label, cfg)
		if err != nil {
			return err
		}
		_, err = disc.RunContext(telemetry.ContextWithRemote(context.Background(), remote))
		return err
	})

	overhead := tracedNs / nopNs
	t.Logf("nop:    min of %d, %.0f ns/op", iters, nopNs)
	t.Logf("traced: min of %d, %.0f ns/op (%.2fx)", iters, tracedNs, overhead)
	// The overhead guard proper: request tracing must stay a modest tax
	// on discovery, not a multiple of it.
	if overhead > 1.5 {
		t.Errorf("traced discovery is %.2fx the untraced cost, want <= 1.5x", overhead)
	}

	type entry struct {
		Mode       string  `json:"mode"`
		Workers    int     `json:"workers"`
		Iterations int     `json:"iterations"`
		NsPerOp    int64   `json:"ns_per_op"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}
	doc := struct {
		Benchmark  string  `json:"benchmark"`
		Dataset    string  `json:"dataset"`
		Rows       int     `json:"rows"`
		Tables     int     `json:"joinable_tables"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		NumCPU     int     `json:"num_cpu"`
		Overhead   float64 `json:"traced_vs_nop"`
		Results    []entry `json:"results"`
	}{
		Benchmark:  "BenchmarkMicroDiscoveryTraced",
		Dataset:    spec.Name,
		Rows:       spec.Rows,
		Tables:     spec.JoinableTables,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Overhead:   overhead,
		Results: []entry{
			{Mode: "nop", Workers: 1, Iterations: iters, NsPerOp: int64(nopNs), SpeedupVs1: 1},
			{Mode: "traced", Workers: 1, Iterations: iters, NsPerOp: int64(tracedNs), SpeedupVs1: nopNs / tracedNs},
		},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline written to %s", out)
}
