package autofeat

// Golden regression test: the discovery pipeline is deterministic by
// design (every random choice is seeded), so the exact ranking on a fixed
// lake is pinned here. A diff in this test means an algorithmic change —
// intentional changes must update the golden values alongside an
// explanation in DESIGN.md.

import (
	"testing"

	"autofeat/internal/datagen"
)

func TestGoldenRankingPinned(t *testing.T) {
	d, err := datagen.Generate(datagen.SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := NewDiscovery(g, d.Base.Name(), d.Label, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := disc.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"tiny.key_00 -> tiny_t00.key_00 ; tiny_t00.key_02 -> tiny_t02.key_02 ; tiny_t02.fk_03 -> tiny_t03.key_03 (score 0.1714, 6 features)",
		"tiny.key_00 -> tiny_t00.key_00 ; tiny_t00.key_02 -> tiny_t02.key_02 (score 0.1302, 4 features)",
		"tiny.key_00 -> tiny_t00.key_00 (score 0.0907, 1 features)",
	}
	got := r.TopK(3)
	if len(got) != len(want) {
		t.Fatalf("top-3 has %d entries", len(got))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("rank %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}
