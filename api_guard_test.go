package autofeat

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoPanickingModelInToolingAndExamples enforces the API-surface
// demotion of Model: every compiled-in tool and example must use
// ModelByName (error-returning) instead of the panicking Model helper,
// so no shipped entry point can die on a typo'd model name. Model stays
// available to end users for literal names in short scripts; this repo's
// own code is held to the stricter form.
func TestNoPanickingModelInToolingAndExamples(t *testing.T) {
	walkToolingCalls(t, func(call *ast.CallExpr, sel *ast.SelectorExpr, pos token.Position) {
		if sel.Sel.Name != "Model" {
			return
		}
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "autofeat" {
			t.Errorf("%s: calls autofeat.Model — use autofeat.ModelByName and handle the error", pos)
		}
	})
}

// TestNoRawColumnConstructionInToolingAndExamples enforces the view-based
// column API: tools and examples load tables through ReadCSV/ReadCSVFile,
// ReadColumnarFile or lake opens — never by assembling columns from raw
// slices with the New*Column constructors. Raw construction bakes the
// in-memory backend into caller code; the view methods (Len/At/IsNull/
// ValueSet/Numeric) work identically over CSV-backed and zero-copy
// columnar-backed tables, and keeping tooling on them is what lets the
// storage engine change without touching a single caller.
func TestNoRawColumnConstructionInToolingAndExamples(t *testing.T) {
	rawCtors := map[string]bool{
		"NewFloatColumn":  true,
		"NewIntColumn":    true,
		"NewStringColumn": true,
		"NewBoolColumn":   true,
	}
	walkToolingCalls(t, func(call *ast.CallExpr, sel *ast.SelectorExpr, pos token.Position) {
		if rawCtors[sel.Sel.Name] {
			t.Errorf("%s: constructs a column from raw slices via %s — tooling and examples must go through the view API (table readers), not the storage constructors",
				pos, sel.Sel.Name)
		}
	})
}

// walkToolingCalls parses every Go file under cmd/ and examples/ and
// invokes fn for each selector-style call expression found.
func walkToolingCalls(t *testing.T, fn func(call *ast.CallExpr, sel *ast.SelectorExpr, pos token.Position)) {
	t.Helper()
	fset := token.NewFileSet()
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, perr := parser.ParseFile(fset, path, nil, 0)
			if perr != nil {
				return perr
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					fn(call, sel, fset.Position(call.Pos()))
				}
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", root, err)
		}
	}
}
