package autofeat

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoPanickingModelInToolingAndExamples enforces the API-surface
// demotion of Model: every compiled-in tool and example must use
// ModelByName (error-returning) instead of the panicking Model helper,
// so no shipped entry point can die on a typo'd model name. Model stays
// available to end users for literal names in short scripts; this repo's
// own code is held to the stricter form.
func TestNoPanickingModelInToolingAndExamples(t *testing.T) {
	fset := token.NewFileSet()
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, perr := parser.ParseFile(fset, path, nil, 0)
			if perr != nil {
				return perr
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Model" {
					return true
				}
				if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "autofeat" {
					t.Errorf("%s: calls autofeat.Model — use autofeat.ModelByName and handle the error",
						fset.Position(call.Pos()))
				}
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", root, err)
		}
	}
}
