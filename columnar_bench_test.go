package autofeat

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestWriteColumnarBench regenerates BENCH_columnar.json, the committed
// cold-open baseline behind the columnar lake format. It is gated behind
// AUTOFEAT_COLUMNAR_BENCH_OUT so plain `go test` stays fast:
//
//	AUTOFEAT_COLUMNAR_BENCH_OUT=BENCH_columnar.json go test -run TestWriteColumnarBench .
//
// (or `make bench`, which does the same). Each row is the min-of-N cost
// of a cold OpenLake — read every table file from disk into frames — at
// 64 and 256 tables, once over the CSV files and once over the packed
// .afc files in the same directory. The Workers field carries the table
// count so cmd/benchdiff pairs rows by (mode, table count). The columnar
// row must stay >= 3x faster than CSV at 256 tables: that margin is the
// point of packing — parsing and re-inferring every cell on each open is
// the cost the binary format deletes. Ranking bit-identity between the
// two backends is pinned separately by TestDiscoverDeterministicAcrossBackends.
func TestWriteColumnarBench(t *testing.T) {
	out := os.Getenv("AUTOFEAT_COLUMNAR_BENCH_OUT")
	if out == "" {
		t.Skip("set AUTOFEAT_COLUMNAR_BENCH_OUT=<path> to write the columnar cold-open baseline")
	}
	const rows = 1000
	sizes := []int{64, 256}

	type entry struct {
		Mode       string  `json:"mode"`
		Workers    int     `json:"workers"` // table count, for benchdiff row pairing
		Iterations int     `json:"iterations"`
		NsPerOp    int64   `json:"ns_per_op"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}
	var results []entry
	var speedup256 float64

	for _, nTables := range sizes {
		dir := t.TempDir()
		writeBenchLakeCSV(t, dir, nTables, rows)
		if n, err := PackLake(dir); err != nil || n != nTables {
			t.Fatalf("PackLake packed %d tables (err %v), want %d", n, err, nTables)
		}

		// Min over fixed repetitions rather than a testing.Benchmark mean:
		// each op reads hundreds of files, so the minimum is the
		// reproducible cost of the work, not of page-cache warmup spikes.
		const iters = 5
		open := func(f Format) func() error {
			return func() error {
				l, err := OpenLake(dir, WithFormat(f))
				if err != nil {
					return err
				}
				if got := len(l.Tables()); got != nTables {
					return fmt.Errorf("opened %d tables, want %d", got, nTables)
				}
				return nil
			}
		}
		csvNs := minNsPerOp(t, iters, open(FormatCSV))
		colrNs := minNsPerOp(t, iters, open(FormatColumnar))
		speedup := csvNs / colrNs
		t.Logf("%d tables: csv %.0f ns/op, columnar %.0f ns/op (%.2fx faster)", nTables, csvNs, colrNs, speedup)
		if nTables == 256 {
			speedup256 = speedup
		}
		results = append(results,
			entry{Mode: "csv", Workers: nTables, Iterations: iters, NsPerOp: int64(csvNs), SpeedupVs1: 1},
			entry{Mode: "columnar", Workers: nTables, Iterations: iters, NsPerOp: int64(colrNs), SpeedupVs1: speedup},
		)
	}
	if speedup256 < 3 {
		t.Errorf("columnar cold-open speedup %.2fx at 256 tables, want >= 3x", speedup256)
	}

	doc := struct {
		Benchmark  string  `json:"benchmark"`
		Dataset    string  `json:"dataset"`
		Rows       int     `json:"rows"`
		Tables     int     `json:"joinable_tables"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		NumCPU     int     `json:"num_cpu"`
		Speedup256 float64 `json:"speedup_columnar_256"`
		Results    []entry `json:"results"`
	}{
		Benchmark:  "BenchmarkColumnarColdOpen",
		Dataset:    "synthetic-lake",
		Rows:       rows,
		Tables:     sizes[len(sizes)-1],
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Speedup256: speedup256,
		Results:    results,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline written to %s", out)
}

// writeBenchLakeCSV writes nTables CSV tables of rows rows each, mixing
// the four column kinds the way real lakes do (an integer key, floats,
// a low-cardinality string and a bool) so the CSV open pays realistic
// parse-and-infer cost per cell and the columnar open pays a realistic
// dictionary decode.
func writeBenchLakeCSV(t *testing.T, dir string, nTables, rows int) {
	t.Helper()
	words := []string{"oslo", "lima", "quito", "dakar", "hanoi", "cairo", "perth", "tunis"}
	for ti := 0; ti < nTables; ti++ {
		rng := rand.New(rand.NewSource(int64(7000 + ti)))
		var sb strings.Builder
		sb.WriteString("k,f1,f2,s1,b1\n")
		for r := 0; r < rows; r++ {
			// A sprinkle of null tokens keeps the validity bitmaps honest.
			f2 := fmt.Sprintf("%.6f", rng.NormFloat64())
			if r%97 == 0 {
				f2 = "NA"
			}
			fmt.Fprintf(&sb, "%d,%.6f,%s,%s,%t\n",
				rng.Intn(rows*4), rng.Float64()*100, f2,
				words[rng.Intn(len(words))], rng.Intn(2) == 0)
		}
		name := fmt.Sprintf("tbl%03d.csv", ti)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
