package autofeat

// Backend-determinism regression tests for the columnar lake format: a
// packed lake must be observationally identical to its source CSV lake.
// Discovery rankings and provenance manifests are compared bit-for-bit
// (after zeroing wall-clock fields, the only legitimately
// non-deterministic manifest content) at one and eight workers, so the
// test also exercises the zero-copy columns under the join worker pool —
// run under -race via make check.

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"autofeat/internal/core"
	"autofeat/internal/datagen"
)

// normalizedManifestJSON serialises a manifest with its timing fields
// zeroed; every other field must be bit-identical across backends and
// worker counts.
func normalizedManifestJSON(t *testing.T, m *core.Manifest) string {
	t.Helper()
	cp := *m
	cp.CreatedUnixMS = 0
	cp.SelectionSeconds = 0
	cp.TotalSeconds = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// rankingLines renders a ranking as exact strings (path, score, feature
// count), the same rendering the golden test pins.
func rankingLines(r *core.Ranking) []string {
	out := make([]string, 0, len(r.Paths))
	for _, p := range r.TopK(len(r.Paths)) {
		out = append(out, p.String())
	}
	return out
}

func TestDiscoverDeterministicAcrossBackends(t *testing.T) {
	d, err := datagen.Generate(datagen.SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tb := range d.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := PackLake(dir); err != nil {
		t.Fatal(err)
	}

	run := func(format Format, workers int) (*LakeResult, error) {
		l, err := OpenLake(dir, WithFormat(format))
		if err != nil {
			return nil, err
		}
		cfg := DefaultConfig()
		cfg.Workers = workers
		return l.Discover(context.Background(), Request{
			Base:   d.Base.Name(),
			Label:  d.Label,
			Config: &cfg,
		})
	}

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			csvRes, err := run(FormatCSV, workers)
			if err != nil {
				t.Fatal(err)
			}
			colrRes, err := run(FormatColumnar, workers)
			if err != nil {
				t.Fatal(err)
			}
			csvRank, colrRank := rankingLines(csvRes.Ranking), rankingLines(colrRes.Ranking)
			if len(csvRank) == 0 {
				t.Fatal("empty ranking: the fixture found no join paths")
			}
			if len(csvRank) != len(colrRank) {
				t.Fatalf("ranking lengths differ: csv %d, columnar %d", len(csvRank), len(colrRank))
			}
			for i := range csvRank {
				if csvRank[i] != colrRank[i] {
					t.Errorf("rank %d differs between backends:\n csv      %s\n columnar %s",
						i, csvRank[i], colrRank[i])
				}
			}
			csvMan := normalizedManifestJSON(t, csvRes.Manifest)
			colrMan := normalizedManifestJSON(t, colrRes.Manifest)
			if csvMan != colrMan {
				t.Errorf("manifests differ between backends:\n csv      %s\n columnar %s", csvMan, colrMan)
			}
		})
	}
}

// TestDiscoverDeterministicSketchedBackends repeats the cross-backend
// check with the sketched matcher, where the columnar backend answers
// from persisted MinHash signatures instead of re-sketching — the edge
// set must still be identical because the persisted signatures are
// bit-identical to freshly computed ones.
func TestDiscoverDeterministicSketchedBackends(t *testing.T) {
	d, err := datagen.Generate(datagen.SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tb := range d.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := PackLake(dir); err != nil {
		t.Fatal(err)
	}
	var lines [][]string
	for _, format := range []Format{FormatCSV, FormatColumnar} {
		l, err := OpenLake(dir, WithFormat(format), WithMatcher(MatcherSketched), WithThreshold(0.4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Discover(context.Background(), Request{Base: d.Base.Name(), Label: d.Label})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, rankingLines(res.Ranking))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("sketched rankings differ in length: %d vs %d", len(lines[0]), len(lines[1]))
	}
	for i := range lines[0] {
		if lines[0][i] != lines[1][i] {
			t.Errorf("sketched rank %d differs:\n csv      %s\n columnar %s", i, lines[0][i], lines[1][i])
		}
	}
}
