package autofeat

// Failure-injection tests: corrupted inputs, degenerate tables and broken
// graphs must produce errors (or graceful no-op results), never panics.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
)

func TestCorruptedCSVFails(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"ragged.csv":   "a,b\n1,2\n3\n",
		"empty.csv":    "",
		"badquote.csv": "a,b\n\"unterminated,2\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadTableCSV(path); err == nil {
			t.Errorf("%s: corrupted CSV must fail", name)
		}
	}
}

func TestDiscoveryOnDisconnectedBase(t *testing.T) {
	// A base with no edges at all: discovery must succeed with an empty
	// ranking and Augment must fall back to the base table.
	base, err := ReadTable("lonely", strings.NewReader("id,x,y\n1,0.5,0\n2,0.7,1\n3,0.2,0\n4,0.9,1\n5,0.1,0\n6,0.8,1\n7,0.3,0\n8,0.6,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	g.AddTable(base)
	disc, err := NewDiscovery(g, "lonely", "y", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := disc.Augment(Model("lightgbm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranking.Paths) != 0 {
		t.Fatal("no edges means no paths")
	}
	if len(res.Best.Path.Edges) != 0 {
		t.Fatal("best must be the base-only candidate")
	}
}

func TestDiscoverySingleClassLabelFails(t *testing.T) {
	base, _ := ReadTable("t", strings.NewReader("id,x,y\n1,0.5,1\n2,0.7,1\n3,0.2,1\n"))
	g := graph.New()
	g.AddTable(base)
	disc, err := NewDiscovery(g, "t", "y", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Single-class data is degenerate: the pipeline must complete
	// gracefully (a trivial always-positive predictor), never panic.
	res, err := disc.Augment(Model("lightgbm"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Eval.Accuracy != 1 {
		t.Fatalf("single-class predictor must be trivially perfect, got %v", res.Best.Eval.Accuracy)
	}
}

func TestDiscoveryNonIntegralLabelFails(t *testing.T) {
	base, _ := ReadTable("t", strings.NewReader("id,y\n1,0.25\n2,0.75\n"))
	g := graph.New()
	g.AddTable(base)
	disc, err := NewDiscovery(g, "t", "y", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disc.Run(); err == nil {
		t.Fatal("non-integral labels must fail")
	}
}

func TestAllNullJoinColumnIsPruned(t *testing.T) {
	// The only join column on the right side is entirely null: the join
	// matches nothing and the path must be pruned, not crash.
	base, _ := ReadTable("b", strings.NewReader("id,y\n1,0\n2,1\n3,0\n4,1\n5,0\n6,1\n"))
	right, _ := ReadTable("r", strings.NewReader("k,v\n,1\n,2\n"))
	g := graph.New()
	g.AddTable(base)
	g.AddTable(right)
	if err := g.AddEdge(Edge{A: "b", B: "r", ColA: "id", ColB: "k", Weight: 0.8}); err != nil {
		t.Fatal(err)
	}
	disc, err := NewDiscovery(g, "b", "y", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := disc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != 0 || r.PathsPruned != 1 {
		t.Fatalf("all-null join key must prune: paths=%d pruned=%d", len(r.Paths), r.PathsPruned)
	}
}

func TestGraphWithVanishedTable(t *testing.T) {
	// MaterializePath over a ranking whose table was replaced must still
	// work (graph holds tables by name); this guards the registry
	// semantics rather than a crash.
	base, _ := ReadTable("b", strings.NewReader("id,y\n1,0\n2,1\n3,0\n4,1\n"))
	right, _ := ReadTable("r", strings.NewReader("k,v\n1,10\n2,20\n3,30\n4,40\n"))
	g := graph.New()
	g.AddTable(base)
	g.AddTable(right)
	if err := g.AddEdge(Edge{A: "b", B: "r", ColA: "id", ColB: "k", Weight: 1, KFK: true}); err != nil {
		t.Fatal(err)
	}
	disc, err := NewDiscovery(g, "b", "y", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := disc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking.Paths) == 0 {
		t.Skip("no path survived; nothing to materialise")
	}
	if _, _, err := disc.MaterializePath(ranking.Paths[0], ranking.Base); err != nil {
		t.Fatal(err)
	}
}

func TestImputeAllNullFrame(t *testing.T) {
	f := frame.New("t")
	if err := f.AddColumn(frame.NewFloatColumn("x", []float64{1, 2}, []bool{false, false})); err != nil {
		t.Fatal(err)
	}
	imp := f.Imputed()
	if imp.NullRatio() != 0 {
		t.Fatal("all-null column must still impute (zeros)")
	}
}

func TestDiscoverDRGEmptyAndSingleTable(t *testing.T) {
	g, err := DiscoverDRG(nil, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 {
		t.Fatal("empty lake gives empty graph")
	}
	solo, _ := ReadTable("solo", strings.NewReader("a,b\n1,2\n"))
	g2, err := DiscoverDRG([]*Table{solo}, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 1 || g2.NumEdges() != 0 {
		t.Fatal("single table gives one node, no edges")
	}
}

func TestBuildDRGDuplicateTableNames(t *testing.T) {
	a, _ := ReadTable("same", strings.NewReader("x,y\n1,2\n"))
	b, _ := ReadTable("same", strings.NewReader("x,y\n3,4\n"))
	g, err := BuildDRG([]*Table{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Last registration wins; the graph must stay consistent.
	if g.NumNodes() != 1 {
		t.Fatalf("duplicate names collapse to one node, got %d", g.NumNodes())
	}
	if g.Table("same").Column("x").Int(0) != 3 {
		t.Fatal("last table must win")
	}
}
