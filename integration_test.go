package autofeat

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autofeat/internal/datagen"
	"autofeat/internal/frame"
)

// writeLakeCSVs materialises a generated dataset as CSV files in a temp
// dir, exercising the full file-based entry path of the public API.
func writeLakeCSVs(t *testing.T, d *datagen.Dataset) string {
	t.Helper()
	dir := t.TempDir()
	for _, tab := range d.Tables {
		if err := tab.WriteCSVFile(filepath.Join(dir, tab.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestEndToEndCSVLakeDiscovery(t *testing.T) {
	spec := datagen.SmallSpecs()[0]
	d, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := writeLakeCSVs(t, d)

	tables, err := ReadTablesDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(d.Tables) {
		t.Fatalf("read %d tables, want %d", len(tables), len(d.Tables))
	}

	// Data lake path: discover relationships, then AutoFeat end to end.
	g, err := DiscoverDRG(tables, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("discovery must find edges in the lake")
	}
	disc, err := NewDiscovery(g, spec.Name, "target", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := disc.Augment(Model("lightgbm"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Eval.Accuracy <= 0.5 {
		t.Fatalf("augmented accuracy %.3f not better than chance", res.Best.Eval.Accuracy)
	}
	if res.Table.NumRows() != spec.Rows {
		t.Fatal("left joins must preserve the base row count end to end")
	}
}

func TestEndToEndKFKBenchmark(t *testing.T) {
	spec := datagen.SmallSpecs()[1]
	d, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := NewDiscovery(g, spec.Name, d.Label, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := disc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking.Paths) == 0 {
		t.Fatal("benchmark DRG must yield ranked paths")
	}
	// Discovery is model-independent: evaluate the same ranking with two
	// model families and confirm each returns a usable result.
	for _, name := range []string{"lightgbm", "randomforest"} {
		res, err := disc.EvaluateRanking(ranking, Model(name))
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Eval.Accuracy < 0.5 {
			t.Fatalf("%s: accuracy %.3f below chance", name, res.Best.Eval.Accuracy)
		}
	}
}

func TestPublicAPIErrors(t *testing.T) {
	if _, err := ReadTablesDir(t.TempDir()); err == nil {
		t.Fatal("empty dir must fail")
	}
	if _, err := ReadTablesDir("/nonexistent-path-xyz"); err == nil {
		t.Fatal("missing dir must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown model must panic with guidance")
		}
	}()
	Model("nope")
}

func TestModelsRegistry(t *testing.T) {
	ms := Models()
	if len(ms) != 6 {
		t.Fatalf("6 models, got %d", len(ms))
	}
	for _, m := range ms {
		c := m.New(1)
		if c.Name() != m.Name {
			t.Fatalf("factory %q builds %q", m.Name, c.Name())
		}
	}
}

func TestReadTableFromReader(t *testing.T) {
	tab, err := ReadTable("inline", strings.NewReader("a,b\n1,x\n2,y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "inline" || tab.NumRows() != 2 {
		t.Fatal("inline read broken")
	}
}

func TestReadTableCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mytable.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := ReadTableCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "mytable" {
		t.Fatalf("table name = %q", tab.Name())
	}
}

// TestLeftJoinLabelInvariant is the core correctness property end to end:
// whatever AutoFeat does, the label column of the augmented table is
// bit-identical to the base table's.
func TestLeftJoinLabelInvariant(t *testing.T) {
	spec := datagen.SmallSpecs()[0]
	d, _ := datagen.Generate(spec)
	g, _ := BuildDRG(d.Tables, d.KFKs)
	disc, _ := NewDiscovery(g, spec.Name, d.Label, DefaultConfig())
	res, err := disc.Augment(Model("extratrees"))
	if err != nil {
		t.Fatal(err)
	}
	orig := d.Base.Column(d.Label)
	aug := res.Table.Column(spec.Name + "." + d.Label)
	if aug == nil {
		t.Fatal("label column missing from augmented table")
	}
	for i := 0; i < orig.Len(); i++ {
		if orig.Int(i) != aug.Int(i) {
			t.Fatalf("label drifted at row %d", i)
		}
	}
}

// TestStratifiedInvariants drives the sampling machinery through the
// public path with randomised shapes.
func TestStratifiedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		n := 100 + rng.Intn(400)
		ids := make([]int64, n)
		labels := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i)
			if rng.Float64() < 0.3 {
				labels[i] = 1
			}
		}
		f := frame.New("t")
		if err := f.AddColumn(frame.NewIntColumn("id", ids, nil)); err != nil {
			t.Fatal(err)
		}
		if err := f.AddColumn(frame.NewIntColumn("y", labels, nil)); err != nil {
			t.Fatal(err)
		}
		s, err := f.StratifiedSample("y", n/2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumRows() == 0 || s.NumRows() > n {
			t.Fatalf("sample size %d out of range", s.NumRows())
		}
	}
}

func TestPublicAutoTune(t *testing.T) {
	spec := datagen.SmallSpecs()[0]
	d, _ := datagen.Generate(spec)
	g, _ := BuildDRG(d.Tables, d.KFKs)
	out, err := AutoTune(g, spec.Name, d.Label, DefaultConfig(), Model("lightgbm"),
		[]float64{0.65}, []int{10, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tried) != 2 || out.Best.Accuracy <= 0.5 {
		t.Fatalf("autotune outcome implausible: %+v", out.Best)
	}
}

func TestPublicSketchedDiscovery(t *testing.T) {
	spec := datagen.SmallSpecs()[0]
	d, _ := datagen.Generate(spec)
	g, err := DiscoverDRGSketched(d.Tables, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("sketched discovery must find the KFK relationships")
	}
	exact, _ := DiscoverDRG(d.Tables, 0.55)
	// The sketched graph should roughly agree with the exact one.
	if g.NumEdges() < exact.NumEdges()/2 || g.NumEdges() > exact.NumEdges()*2 {
		t.Fatalf("sketched edges %d too far from exact %d", g.NumEdges(), exact.NumEdges())
	}
}

func TestPublicGraphPersistence(t *testing.T) {
	spec := datagen.SmallSpecs()[0]
	d, _ := datagen.Generate(spec)
	g, _ := DiscoverDRG(d.Tables, 0.55)
	path := t.TempDir() + "/drg.json"
	if err := SaveGraph(g, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGraph(path, d.Tables)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() != g.NumEdges() {
		t.Fatalf("edges lost: %d vs %d", loaded.NumEdges(), g.NumEdges())
	}
	// The loaded graph must drive discovery identically.
	d1, _ := NewDiscovery(g, spec.Name, d.Label, DefaultConfig())
	d2, _ := NewDiscovery(loaded, spec.Name, d.Label, DefaultConfig())
	r1, _ := d1.Run()
	r2, _ := d2.Run()
	if len(r1.Paths) != len(r2.Paths) {
		t.Fatal("loaded graph must reproduce the ranking")
	}
	for i := range r1.Paths {
		if r1.Paths[i].String() != r2.Paths[i].String() {
			t.Fatalf("path %d differs after reload", i)
		}
	}
}
