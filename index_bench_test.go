package autofeat

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"autofeat/internal/discovery"
	"autofeat/internal/frame"
	"autofeat/internal/lake"
)

// indexBenchTables builds a wide synthetic lake shaped like the
// workload the LSH index exists for: n tables partitioned into key
// groups. Tables in the same group share a key column name ("key_g<g>")
// and overlapping key ranges, so they form DRG edges; tables in
// different groups share neither name-bucket nor values, so the index
// never pairs them while the quadratic build still scores every one of
// the n*(n-1)/2 table pairs.
func indexBenchTables(n int) []*frame.Frame {
	// Fixed group size, so the group count — and with it the fraction of
	// table pairs the index can skip — grows with the lake.
	groups := n / 8
	if groups < 1 {
		groups = 1
	}
	const rows = 60
	tabs := make([]*frame.Frame, n)
	for i := range tabs {
		g := i % groups
		f := frame.New(fmt.Sprintf("t%03d", i))
		keys := make([]int64, rows)
		for r := range keys {
			// Sliding 60-value window per table inside the group's
			// 120-value key space: tables of one group overlap by 20-60
			// values, other groups never.
			keys[r] = int64(g*100_000 + ((i/groups)*20+r)%120)
		}
		feats := make([]float64, rows)
		for r := range feats {
			feats[r] = float64(i*rows + r)
		}
		if err := f.AddColumn(frame.NewIntColumn(fmt.Sprintf("key_g%d", g), keys, nil)); err != nil {
			panic(err)
		}
		if err := f.AddColumn(frame.NewFloatColumn("feat", feats, nil)); err != nil {
			panic(err)
		}
		tabs[i] = f
	}
	return tabs
}

// TestWriteIndexBench regenerates BENCH_index.json, the committed
// quadratic-vs-indexed DRG-construction baseline. It is gated behind
// AUTOFEAT_INDEX_BENCH_OUT so plain `go test` stays fast:
//
//	AUTOFEAT_INDEX_BENCH_OUT=BENCH_index.json go test -run TestWriteIndexBench .
//
// (or `make bench`). "quadratic" scores every table pair with the exact
// matcher; "indexed" builds the LSH index and verifies only bucket
// collisions — the DRGs are asserted edge-identical before timing. The
// register rows compare the two ways of absorbing one new table at the
// largest size: "register_cold" rebuilds the DRG from scratch,
// "register_incr" patches the warm lake through Lake.RegisterTable.
func TestWriteIndexBench(t *testing.T) {
	out := os.Getenv("AUTOFEAT_INDEX_BENCH_OUT")
	if out == "" {
		t.Skip("set AUTOFEAT_INDEX_BENCH_OUT=<path> to write the index baseline")
	}
	const threshold = lake.DefaultThreshold
	m := discovery.NewMatcher()

	type entry struct {
		Mode       string  `json:"mode"`
		Workers    int     `json:"workers"` // table count, reused as the benchdiff pairing key
		Iterations int     `json:"iterations"`
		NsPerOp    int64   `json:"ns_per_op"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}
	var results []entry
	var speedup256 float64

	sizes := []int{16, 64, 256}
	for _, n := range sizes {
		tabs := indexBenchTables(n)
		// Edge identity first: the speedup is only meaningful if both
		// paths produce the same graph.
		quadG, err := discovery.DiscoverDRGQuadratic(tabs, threshold, m)
		if err != nil {
			t.Fatal(err)
		}
		idx := discovery.NewLSHIndex(0, 0)
		for _, f := range tabs {
			idx.Add(f)
		}
		idxG, err := discovery.DiscoverDRGIndexed(tabs, threshold, m, idx)
		if err != nil {
			t.Fatal(err)
		}
		if quadG.NumEdges() == 0 || quadG.NumEdges() != idxG.NumEdges() {
			t.Fatalf("n=%d: edge mismatch: quadratic %d, indexed %d", n, quadG.NumEdges(), idxG.NumEdges())
		}

		iters := 5
		if n >= 256 {
			iters = 3
		}
		quadNs := minNsPerOp(t, iters, func() error {
			_, err := discovery.DiscoverDRGQuadratic(tabs, threshold, m)
			return err
		})
		idxNs := minNsPerOp(t, iters, func() error {
			ix := discovery.NewLSHIndex(0, 0)
			for _, f := range tabs {
				ix.Add(f)
			}
			_, err := discovery.DiscoverDRGIndexed(tabs, threshold, m, ix)
			return err
		})
		sp := quadNs / idxNs
		t.Logf("n=%d tables: quadratic %.0f ns/op, indexed %.0f ns/op (%.1fx)", n, quadNs, idxNs, sp)
		results = append(results,
			entry{Mode: "quadratic", Workers: n, Iterations: iters, NsPerOp: int64(quadNs), SpeedupVs1: 1},
			entry{Mode: "indexed", Workers: n, Iterations: iters, NsPerOp: int64(idxNs), SpeedupVs1: sp},
		)
		if n == 256 {
			speedup256 = sp
		}
	}
	if speedup256 < 5 {
		t.Errorf("indexed DRG build at 256 tables is %.1fx faster, want >= 5x", speedup256)
	}

	// Absorbing one new table at the largest size: full rebuild vs
	// incremental patch of a warm resident lake.
	const n = 256
	tabs := indexBenchTables(n + 1)
	coldIters, incrIters := 3, 8
	coldNs := minNsPerOp(t, coldIters, func() error {
		l := lake.New(tabs)
		_, err := l.DRG()
		return err
	})
	resident := lake.New(tabs[:n])
	if _, err := resident.DRG(); err != nil {
		t.Fatal(err)
	}
	i := 0
	incrNs := minNsPerOp(t, incrIters, func() error {
		f := indexBenchTables(n + 1)[n].WithName(fmt.Sprintf("fresh%03d", i))
		i++
		if err := resident.RegisterTable(f); err != nil {
			return err
		}
		_, err := resident.DRG()
		return err
	})
	regSp := coldNs / incrNs
	t.Logf("register: cold rebuild %.0f ns/op, incremental %.0f ns/op (%.1fx)", coldNs, incrNs, regSp)
	results = append(results,
		entry{Mode: "register_cold", Workers: n, Iterations: coldIters, NsPerOp: int64(coldNs), SpeedupVs1: 1},
		entry{Mode: "register_incr", Workers: n, Iterations: incrIters, NsPerOp: int64(incrNs), SpeedupVs1: regSp},
	)

	doc := struct {
		Benchmark      string  `json:"benchmark"`
		Dataset        string  `json:"dataset"`
		Rows           int     `json:"rows"`
		Tables         int     `json:"joinable_tables"`
		GOMAXPROCS     int     `json:"gomaxprocs"`
		NumCPU         int     `json:"num_cpu"`
		SpeedupIndexed float64 `json:"speedup_indexed_vs_quadratic_256"`
		Results        []entry `json:"results"`
	}{
		Benchmark:      "BenchmarkIndexedDRG",
		Dataset:        "grouped-key synthetic lake (8 tables per key group)",
		Rows:           60,
		Tables:         256,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		SpeedupIndexed: speedup256,
		Results:        results,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline written to %s", out)
}
