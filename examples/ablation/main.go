// Ablation walkthrough: swaps AutoFeat's relevance and redundancy metrics
// (the Figure 9 study) on one generated lake and prints the
// accuracy/runtime trade-off of each configuration. All six variants run
// against one Lake session, so the DRG is built once and every run after
// the first reuses the cached join indexes.
//
//	go run ./examples/ablation
package main

import (
	"context"
	"fmt"
	"log"

	"autofeat"
	"autofeat/internal/datagen"
)

func main() {
	ds, err := datagen.Generate(datagen.SmallSpecs()[1])
	must(err)
	l := autofeat.NewLake(ds.Tables, autofeat.WithKFKs(ds.KFKs))
	model, err := autofeat.ModelByName("lightgbm")
	must(err)

	variants := []struct {
		name       string
		relevance  string
		redundancy string
	}{
		{"autofeat (spearman+mrmr)", "spearman", "mrmr"},
		{"pearson+jmi", "pearson", "jmi"},
		{"spearman+jmi", "spearman", "jmi"},
		{"pearson+mrmr", "pearson", "mrmr"},
		{"spearman only", "spearman", ""},
		{"mrmr only", "", "mrmr"},
	}
	fmt.Printf("%-26s %9s %12s %8s\n", "variant", "accuracy", "selection", "paths")
	for _, v := range variants {
		cfg := autofeat.DefaultConfig()
		cfg.Relevance = autofeat.RelevanceMetric(v.relevance)    // nil disables
		cfg.Redundancy = autofeat.RedundancyMetric(v.redundancy) // nil disables
		disc, err := l.NewDiscovery(ds.Base.Name(), ds.Label, cfg)
		must(err)
		res, err := disc.AugmentContext(context.Background(), model)
		must(err)
		fmt.Printf("%-26s %9.3f %12v %8d\n",
			v.name, res.Best.Eval.Accuracy, res.SelectionTime, len(res.Ranking.Paths))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
