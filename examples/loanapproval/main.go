// Loan approval: the paper's Figure 2 running example. The base table
// Applicants carries the Loan_approval label; the lake holds
// Personal_information and Credit_profile (directly joinable),
// Property_value (reachable only transitively through Credit_profile) and
// Loan_history. Relationships are *discovered*, not declared, so spurious
// matches appear — exactly the setting AutoFeat is built for.
//
//	go run ./examples/loanapproval
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"autofeat"
)

func main() {
	// Data-lake setting: no constraints, discover relationships with the
	// composite matcher at the paper's 0.55 threshold.
	l := autofeat.NewLake(buildLake(), autofeat.WithThreshold(0.55))
	g, err := l.DRG()
	must(err)
	fmt.Printf("discovered DRG: %d tables, %d candidate join edges (multigraph)\n",
		g.NumNodes(), g.NumEdges())
	for _, e := range g.EdgesFrom("applicants") {
		fmt.Printf("  applicants: %s\n", e)
	}

	out, err := l.Discover(context.Background(), autofeat.Request{
		Base:  "applicants",
		Label: "loan_approval",
		Model: "xgboost",
	})
	must(err)
	res := out.Augment

	fmt.Println("\ntop ranked join paths:")
	for i, p := range res.Ranking.TopK(4) {
		fmt.Printf("  %d. %s\n", i+1, p)
	}
	fmt.Printf("\nbase accuracy:      %.3f\n", res.Evaluated[0].Eval.Accuracy)
	fmt.Printf("augmented accuracy: %.3f\n", res.Best.Eval.Accuracy)
	fmt.Printf("winning path:       %s\n", res.Best.Path)
	fmt.Println("\naugmented table preview:")
	prev, err := res.Table.Select(res.Features[:min(4, len(res.Features))]...)
	must(err)
	fmt.Print(prev.Head(5))
}

// buildLake synthesises the Figure 2 tables. Property value (reached via
// Credit_profile.property_ref) carries the decisive signal for loan
// approval; the direct neighbours carry weak or no signal.
func buildLake() []*autofeat.Table {
	rng := rand.New(rand.NewSource(7))
	n := 600
	var applicants, personal, credit, property, history strings.Builder
	applicants.WriteString("applicant_id,requested_amount,loan_approval\n")
	personal.WriteString("person,age,dependents\n")
	credit.WriteString("applicant,credit_score,property_ref\n")
	property.WriteString("property_id,assessed_value,land_area\n")
	history.WriteString("credit_ref,past_defaults\n")
	for i := 0; i < n; i++ {
		approved := i % 2
		amount := 50000 + rng.Intn(250000)
		age := 21 + rng.Intn(45)
		deps := rng.Intn(4)
		score := 580 + rng.Intn(240) + approved*20 // weakly informative
		propertyID := 9000 + i
		// The decisive signal: approved applicants hold clearly
		// higher-value property.
		value := 120000 + float64(approved)*90000 + rng.NormFloat64()*25000
		area := 80 + rng.Float64()*400
		defaults := rng.Intn(3)
		fmt.Fprintf(&applicants, "%d,%d,%d\n", i, amount, approved)
		fmt.Fprintf(&personal, "%d,%d,%d\n", i, age, deps)
		fmt.Fprintf(&credit, "%d,%d,%d\n", i, score, propertyID)
		fmt.Fprintf(&property, "%d,%.0f,%.1f\n", propertyID, value, area)
		fmt.Fprintf(&history, "%d,%d\n", score, defaults)
	}
	out := make([]*autofeat.Table, 0, 5)
	for name, csv := range map[string]string{
		"applicants":           applicants.String(),
		"personal_information": personal.String(),
		"credit_profile":       credit.String(),
		"property_value":       property.String(),
		"loan_history":         history.String(),
	} {
		t, err := autofeat.ReadTable(name, strings.NewReader(csv))
		must(err)
		out = append(out, t)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
