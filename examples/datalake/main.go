// Data lake walkthrough: generates the "credit" Table II analogue,
// compares the benchmark setting (known KFK constraints) with the data
// lake setting (relationships rediscovered by schema matching, spurious
// edges included), and shows AutoFeat pruning the noise.
//
// Both settings run against one resident Lake session, so the tables are
// loaded once and each DRG is built once and memoised. The lake comes
// from the bundled synthetic generator; with your own data, point
// autofeat.OpenLake at a directory of CSVs instead.
//
//	go run ./examples/datalake
package main

import (
	"context"
	"fmt"
	"log"

	"autofeat"
	"autofeat/internal/datagen"
)

func main() {
	spec, _ := datagen.SpecByName("credit")
	ds, err := datagen.Generate(spec)
	must(err)
	fmt.Printf("generated %q: %d tables, %d rows, spurious table %q\n",
		spec.Name, len(ds.Tables), spec.Rows, ds.SpuriousTable)

	l := autofeat.NewLake(ds.Tables)
	// Setting 1: curated KFK constraints (snowflake schema).
	bench, err := l.DRG(autofeat.WithKFKs(ds.KFKs))
	must(err)
	// Setting 2: drop the metadata, rediscover with the matcher.
	lakeDRG, err := l.DRG(autofeat.WithThreshold(0.55))
	must(err)
	fmt.Printf("benchmark DRG: %d edges | lake DRG: %d edges (extra = spurious candidates)\n",
		bench.NumEdges(), lakeDRG.NumEdges())

	model, err := autofeat.ModelByName("lightgbm")
	must(err)
	for _, tc := range []struct {
		name string
		opts []autofeat.LakeOption
	}{
		{"benchmark", []autofeat.LakeOption{autofeat.WithKFKs(ds.KFKs)}},
		{"lake", []autofeat.LakeOption{autofeat.WithThreshold(0.55)}},
	} {
		// The DRG for each setting is already memoised from above; the
		// discovery run reuses it plus the Lake's shared join-index cache.
		disc, err := l.NewDiscovery(ds.Base.Name(), ds.Label, autofeat.DefaultConfig(), tc.opts...)
		must(err)
		res, err := disc.AugmentContext(context.Background(), model)
		must(err)
		fmt.Printf("\n[%s setting]\n", tc.name)
		fmt.Printf("  paths explored %d, pruned %d\n", res.Ranking.PathsExplored, res.Ranking.PathsPruned)
		fmt.Printf("  base accuracy      %.3f\n", res.Evaluated[0].Eval.Accuracy)
		fmt.Printf("  augmented accuracy %.3f via %s\n", res.Best.Eval.Accuracy, res.Best.Path)
		fmt.Printf("  selection %v of %v total\n", res.SelectionTime, res.TotalTime)
		// The spurious table must not appear on the winning path.
		for _, table := range res.Best.Path.Tables() {
			if table == ds.SpuriousTable {
				fmt.Printf("  WARNING: spurious table %q survived pruning!\n", table)
			}
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
