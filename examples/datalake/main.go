// Data lake walkthrough: generates the "credit" Table II analogue,
// compares the benchmark setting (known KFK constraints) with the data
// lake setting (relationships rediscovered by schema matching, spurious
// edges included), and shows AutoFeat pruning the noise.
//
// The lake comes from the bundled synthetic generator; with your own
// data, point autofeat.ReadTablesDir at a directory of CSVs instead.
//
//	go run ./examples/datalake
package main

import (
	"fmt"
	"log"

	"autofeat"
	"autofeat/internal/datagen"
)

func main() {
	spec, _ := datagen.SpecByName("credit")
	ds, err := datagen.Generate(spec)
	must(err)
	fmt.Printf("generated %q: %d tables, %d rows, spurious table %q\n",
		spec.Name, len(ds.Tables), spec.Rows, ds.SpuriousTable)

	// Setting 1: curated KFK constraints (snowflake schema).
	bench, err := autofeat.BuildDRG(ds.Tables, ds.KFKs)
	must(err)
	// Setting 2: drop the metadata, rediscover with the matcher.
	lake, err := autofeat.DiscoverDRG(ds.Tables, 0.55)
	must(err)
	fmt.Printf("benchmark DRG: %d edges | lake DRG: %d edges (extra = spurious candidates)\n",
		bench.NumEdges(), lake.NumEdges())

	for _, tc := range []struct {
		name string
		g    *autofeat.Graph
	}{{"benchmark", bench}, {"lake", lake}} {
		disc, err := autofeat.NewDiscovery(tc.g, ds.Base.Name(), ds.Label, autofeat.DefaultConfig())
		must(err)
		res, err := disc.Augment(autofeat.Model("lightgbm"))
		must(err)
		fmt.Printf("\n[%s setting]\n", tc.name)
		fmt.Printf("  paths explored %d, pruned %d\n", res.Ranking.PathsExplored, res.Ranking.PathsPruned)
		fmt.Printf("  base accuracy      %.3f\n", res.Evaluated[0].Eval.Accuracy)
		fmt.Printf("  augmented accuracy %.3f via %s\n", res.Best.Eval.Accuracy, res.Best.Path)
		fmt.Printf("  selection %v of %v total\n", res.SelectionTime, res.TotalTime)
		// The spurious table must not appear on the winning path.
		for _, table := range res.Best.Path.Tables() {
			if table == ds.SpuriousTable {
				fmt.Printf("  WARNING: spurious table %q survived pruning!\n", table)
			}
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
