// Quickstart: transitive feature discovery on a toy lake built from
// inline CSV. Demonstrates the minimal public-API workflow: load tables,
// declare (or discover) relationships, run discovery, train on the best
// path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"autofeat"
)

// makeLake builds three CSV tables: customers (base, with churn label),
// accounts (1 hop) and usage (2 hops, holds the predictive signal).
func makeLake() (customers, accounts, usage string) {
	rng := rand.New(rand.NewSource(42))
	var c, a, u strings.Builder
	c.WriteString("customer_id,age,churn\n")
	a.WriteString("cust,account_id,balance\n")
	u.WriteString("account,weekly_logins\n")
	for i := 0; i < 400; i++ {
		churn := i % 2
		// Age is noise; balance is weakly informative; weekly_logins
		// (two hops away) determines churn almost perfectly.
		age := 20 + rng.Intn(50)
		balance := 1000 + rng.NormFloat64()*300 + float64(churn)*150
		logins := 10 - float64(churn)*6 + rng.NormFloat64()
		fmt.Fprintf(&c, "%d,%d,%d\n", i, age, churn)
		fmt.Fprintf(&a, "%d,%d,%.1f\n", i, 10000+i, balance)
		fmt.Fprintf(&u, "%d,%.2f\n", 10000+i, logins)
	}
	return c.String(), a.String(), u.String()
}

func main() {
	cCSV, aCSV, uCSV := makeLake()
	customers, err := autofeat.ReadTable("customers", strings.NewReader(cCSV))
	must(err)
	accounts, err := autofeat.ReadTable("accounts", strings.NewReader(aCSV))
	must(err)
	usage, err := autofeat.ReadTable("usage", strings.NewReader(uCSV))
	must(err)

	// Known key–foreign-key constraints (the "benchmark setting").
	g, err := autofeat.BuildDRG(
		[]*autofeat.Table{customers, accounts, usage},
		[]autofeat.KFK{
			{ParentTable: "accounts", ParentCol: "cust", ChildTable: "customers", ChildCol: "customer_id"},
			{ParentTable: "usage", ParentCol: "account", ChildTable: "accounts", ChildCol: "account_id"},
		})
	must(err)

	disc, err := autofeat.NewDiscovery(g, "customers", "churn", autofeat.DefaultConfig())
	must(err)
	res, err := disc.Augment(autofeat.Model("lightgbm"))
	must(err)

	fmt.Println("ranked join paths:")
	for i, p := range res.Ranking.TopK(3) {
		fmt.Printf("  %d. %s\n", i+1, p)
	}
	fmt.Printf("\nbase-table-only accuracy: %.3f\n", res.Evaluated[0].Eval.Accuracy)
	fmt.Printf("best augmented accuracy:  %.3f via %s\n", res.Best.Eval.Accuracy, res.Best.Path)
	fmt.Printf("selected features: %v\n", res.Features)
	fmt.Printf("feature selection took %v of %v total\n", res.SelectionTime, res.TotalTime)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
