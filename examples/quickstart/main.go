// Quickstart: transitive feature discovery on a toy lake built from
// inline CSV. Demonstrates the minimal public-API workflow: wrap the
// tables as a Lake session, declare (or discover) relationships, and run
// one Discover request that ranks join paths and trains on the best one.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"autofeat"
)

// makeLake builds three CSV tables: customers (base, with churn label),
// accounts (1 hop) and usage (2 hops, holds the predictive signal).
func makeLake() (customers, accounts, usage string) {
	rng := rand.New(rand.NewSource(42))
	var c, a, u strings.Builder
	c.WriteString("customer_id,age,churn\n")
	a.WriteString("cust,account_id,balance\n")
	u.WriteString("account,weekly_logins\n")
	for i := 0; i < 400; i++ {
		churn := i % 2
		// Age is noise; balance is weakly informative; weekly_logins
		// (two hops away) determines churn almost perfectly.
		age := 20 + rng.Intn(50)
		balance := 1000 + rng.NormFloat64()*300 + float64(churn)*150
		logins := 10 - float64(churn)*6 + rng.NormFloat64()
		fmt.Fprintf(&c, "%d,%d,%d\n", i, age, churn)
		fmt.Fprintf(&a, "%d,%d,%.1f\n", i, 10000+i, balance)
		fmt.Fprintf(&u, "%d,%.2f\n", 10000+i, logins)
	}
	return c.String(), a.String(), u.String()
}

func main() {
	cCSV, aCSV, uCSV := makeLake()
	customers, err := autofeat.ReadTable("customers", strings.NewReader(cCSV))
	must(err)
	accounts, err := autofeat.ReadTable("accounts", strings.NewReader(aCSV))
	must(err)
	usage, err := autofeat.ReadTable("usage", strings.NewReader(uCSV))
	must(err)

	// A Lake is a resident session: tables stay loaded, the DRG is built
	// once per setting, and join indexes are cached across requests. Known
	// key–foreign-key constraints select the "benchmark setting". (With a
	// directory of CSVs, use autofeat.OpenLake(dir, ...) instead.)
	l := autofeat.NewLake(
		[]*autofeat.Table{customers, accounts, usage},
		autofeat.WithKFKs([]autofeat.KFK{
			{ParentTable: "accounts", ParentCol: "cust", ChildTable: "customers", ChildCol: "customer_id"},
			{ParentTable: "usage", ParentCol: "account", ChildTable: "accounts", ChildCol: "account_id"},
		}))

	out, err := l.Discover(context.Background(), autofeat.Request{
		Base:  "customers",
		Label: "churn",
		Model: "lightgbm",
	})
	must(err)
	res := out.Augment

	fmt.Println("ranked join paths:")
	for i, p := range res.Ranking.TopK(3) {
		fmt.Printf("  %d. %s\n", i+1, p)
	}
	fmt.Printf("\nbase-table-only accuracy: %.3f\n", res.Evaluated[0].Eval.Accuracy)
	fmt.Printf("best augmented accuracy:  %.3f via %s\n", res.Best.Eval.Accuracy, res.Best.Path)
	fmt.Printf("selected features: %v\n", res.Features)
	fmt.Printf("feature selection took %v of %v total\n", res.SelectionTime, res.TotalTime)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
