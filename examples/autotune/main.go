// Autotune: the paper's future-work item "dynamic hyper-parameter
// tuning" in action. Grid-searches τ (data-quality threshold) and κ
// (features per table) on a generated lake, shows the accuracy/time
// trade-off per configuration, and runs AutoFeat with the winner —
// including beam-search pruning, the other future-work lever for large
// lakes.
//
//	go run ./examples/autotune
package main

import (
	"context"
	"fmt"
	"log"

	"autofeat"
	"autofeat/internal/datagen"
)

func main() {
	spec, _ := datagen.SpecByName("steel")
	ds, err := datagen.Generate(spec)
	must(err)
	l := autofeat.NewLake(ds.Tables, autofeat.WithKFKs(ds.KFKs))
	g, err := l.DRG()
	must(err)
	model, err := autofeat.ModelByName("lightgbm")
	must(err)

	out, err := autofeat.AutoTune(g, ds.Base.Name(), ds.Label, autofeat.DefaultConfig(),
		model,
		[]float64{0.5, 0.65, 0.9},
		[]int{5, 15})
	must(err)

	fmt.Printf("%6s %6s %10s %8s %12s\n", "tau", "kappa", "accuracy", "paths", "selection")
	for _, tr := range out.Tried {
		fmt.Printf("%6.2f %6d %10.4f %8d %12v\n", tr.Tau, tr.Kappa, tr.Accuracy, tr.Paths, tr.SelectionTime)
	}
	fmt.Printf("\nwinner: tau=%.2f kappa=%d (accuracy %.4f), tuned in %v\n",
		out.Best.Tau, out.Best.Kappa, out.Best.Accuracy, out.Elapsed)

	// Final run with the tuned configuration plus beam pruning, reusing
	// the Lake's memoised DRG and warm join-index cache.
	cfg := autofeat.DefaultConfig()
	cfg.Tau = out.Best.Tau
	cfg.Kappa = out.Best.Kappa
	cfg.BeamWidth = 4
	final, err := l.Discover(context.Background(), autofeat.Request{
		Base:   ds.Base.Name(),
		Label:  ds.Label,
		Model:  "lightgbm",
		Config: &cfg,
	})
	must(err)
	res := final.Augment
	fmt.Printf("\ntuned + beam(4) run: accuracy %.4f via %s\n", res.Best.Eval.Accuracy, res.Best.Path)
	fmt.Printf("explored %d joins (beam bounds the frontier), selection %v\n",
		res.Ranking.PathsExplored, res.SelectionTime)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
