GO ?= go

.PHONY: build vet test race bench bench-diff check docs-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the micro benchmarks only (the figure benchmarks regenerate
# the whole evaluation and are slow); use `go test -bench .` for all.
# It also refreshes BENCH_parallel.json, the committed worker-scaling
# baseline (speedup at 4/8 workers is bounded by the cores available),
# and BENCH_serve.json, the cold-vs-warm serving baseline (the warm row
# must stay >= 2x faster than cold), and BENCH_traced.json, the
# request-tracing overhead baseline (traced must stay <= 1.5x untraced),
# and BENCH_index.json, the quadratic-vs-LSH-indexed DRG-construction
# baseline (indexed must stay >= 5x faster at 256 tables), and
# BENCH_cluster.json, the coordinator/worker throughput baseline (the
# 2-worker row must reach >= 1.5x jobs/sec on multi-core hosts; on one
# core the ratio is core-bound near 1x), and BENCH_federation.json, the
# federated-scrape overhead baseline (one coordinator /v1/cluster/metrics
# scrape, idle vs under a running workload; the loaded row must stay
# under 1s per scrape), and BENCH_columnar.json, the columnar cold-open
# baseline (packed .afc files vs CSV at 64/256 tables; the columnar row
# must stay >= 3x faster at 256 tables).
bench:
	$(GO) test -run xxx -bench 'BenchmarkMicro' -benchmem .
	AUTOFEAT_BENCH_OUT=BENCH_parallel.json $(GO) test -run TestWriteParallelBench -v .
	AUTOFEAT_SERVE_BENCH_OUT=BENCH_serve.json $(GO) test -run TestWriteServeBench -v .
	AUTOFEAT_TRACED_BENCH_OUT=BENCH_traced.json $(GO) test -run TestWriteTracedBench -v .
	AUTOFEAT_INDEX_BENCH_OUT=BENCH_index.json $(GO) test -run TestWriteIndexBench -v .
	AUTOFEAT_CLUSTER_BENCH_OUT=BENCH_cluster.json $(GO) test -run TestWriteClusterBench -v .
	AUTOFEAT_FEDERATION_BENCH_OUT=BENCH_federation.json $(GO) test -run TestWriteFederationBench -v .
	AUTOFEAT_COLUMNAR_BENCH_OUT=BENCH_columnar.json $(GO) test -run TestWriteColumnarBench -v .

# bench-diff regenerates candidate baselines and diffs them against the
# committed BENCH_parallel.json and BENCH_serve.json; the exit code fails
# the make on a >5% wall-clock regression (tune with `go run
# ./cmd/benchdiff -threshold N OLD NEW` directly).
bench-diff:
	AUTOFEAT_BENCH_OUT=BENCH_candidate.json $(GO) test -run TestWriteParallelBench .
	$(GO) run ./cmd/benchdiff BENCH_parallel.json BENCH_candidate.json
	AUTOFEAT_SERVE_BENCH_OUT=BENCH_serve_candidate.json $(GO) test -run TestWriteServeBench .
	$(GO) run ./cmd/benchdiff BENCH_serve.json BENCH_serve_candidate.json
	AUTOFEAT_TRACED_BENCH_OUT=BENCH_traced_candidate.json $(GO) test -run TestWriteTracedBench .
	$(GO) run ./cmd/benchdiff BENCH_traced.json BENCH_traced_candidate.json
	AUTOFEAT_INDEX_BENCH_OUT=BENCH_index_candidate.json $(GO) test -run TestWriteIndexBench .
	$(GO) run ./cmd/benchdiff BENCH_index.json BENCH_index_candidate.json
	AUTOFEAT_CLUSTER_BENCH_OUT=BENCH_cluster_candidate.json $(GO) test -run TestWriteClusterBench .
	$(GO) run ./cmd/benchdiff BENCH_cluster.json BENCH_cluster_candidate.json
	AUTOFEAT_FEDERATION_BENCH_OUT=BENCH_federation_candidate.json $(GO) test -run TestWriteFederationBench .
	$(GO) run ./cmd/benchdiff BENCH_federation.json BENCH_federation_candidate.json
	AUTOFEAT_COLUMNAR_BENCH_OUT=BENCH_columnar_candidate.json $(GO) test -run TestWriteColumnarBench .
	$(GO) run ./cmd/benchdiff BENCH_columnar.json BENCH_columnar_candidate.json

# docs-check is the documentation gate: a godoc audit over the
# public-facing packages (exported identifiers must carry doc comments
# that start with their name), a relative-link check over README,
# DESIGN and docs/, the route-sync audit (every HTTP route
# registered in internal/obsrv and internal/serve must have a matching
# "### METHOD /path" heading in docs/API.md, and vice versa), and the
# format-constant audit (internal/frame's Format* constants must match
# the file-format specification in DESIGN.md, and vice versa).
docs-check:
	$(GO) run ./cmd/doccheck -md README.md,DESIGN.md,docs \
		-api docs/API.md -routes internal/obsrv,internal/serve \
		-format internal/frame=DESIGN.md \
		internal/core internal/relational internal/fselect internal/telemetry \
		internal/obsrv internal/lake internal/serve internal/frame internal/sketch .

# check is the tier-1 verification gate (see ROADMAP.md).
check: docs-check
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
